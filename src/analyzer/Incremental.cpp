//===- analyzer/Incremental.cpp - Incremental re-analysis driver ----------===//
//
// Validated journal replay: see the protocol description in Incremental.h.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Incremental.h"

#include "analyzer/ParallelScheduler.h"
#include "compiler/ProgramCompiler.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <unordered_set>

using namespace awam;

namespace {

/// Do two instructions perform the same operation, with pool/table indices
/// resolved to their meaning? Both modules must share one SymbolTable (the
/// callers guarantee it), so Symbol values compare directly. Address-typed
/// operands (try/retry/trust chains, switches, jumps) are conservatively
/// unequal — clause code blocks never contain them, so this only fires if
/// that invariant ever changes, and it fails safe (pred counted edited).
bool instrEquiv(const CodeModule &MA, const Instruction &A,
                const CodeModule &MB, const Instruction &B) {
  if (A.Op != B.Op)
    return false;
  switch (A.Op) {
  case Opcode::GetConst:
  case Opcode::PutConst:
  case Opcode::UnifyConst:
    return A.B == B.B && MA.constAt(A.A) == MB.constAt(B.A);
  case Opcode::GetStructure:
  case Opcode::PutStructure:
    return A.B == B.B && MA.functorAt(A.A) == MB.functorAt(B.A);
  case Opcode::Call:
  case Opcode::Execute: {
    const PredicateInfo &PA = MA.predicate(A.A);
    const PredicateInfo &PB = MB.predicate(B.A);
    return PA.Name == PB.Name && PA.Arity == PB.Arity;
  }
  case Opcode::Try:
  case Opcode::Retry:
  case Opcode::Trust:
  case Opcode::Jump:
  case Opcode::SwitchOnTerm:
  case Opcode::SwitchOnConstant:
  case Opcode::SwitchOnStructure:
    return false;
  default:
    return A.A == B.A && A.B == B.B;
  }
}

} // namespace

std::vector<PredSig> awam::diffPrograms(const CompiledProgram &Old,
                                        const CompiledProgram &New) {
  const CodeModule &MO = *Old.Module;
  const CodeModule &MN = *New.Module;
  std::vector<PredSig> Edited;
  auto sigOf = [](const CodeModule &M, const PredicateInfo &P) {
    return PredSig{std::string(M.symbols().name(P.Name)), P.Arity};
  };
  if (&MO.symbols() != &MN.symbols()) {
    for (int32_t I = 0; I != MO.numPredicates(); ++I)
      Edited.push_back(sigOf(MO, MO.predicate(I)));
    for (int32_t I = 0; I != MN.numPredicates(); ++I)
      Edited.push_back(sigOf(MN, MN.predicate(I)));
    return Edited;
  }
  for (int32_t I = 0; I != MN.numPredicates(); ++I) {
    const PredicateInfo &PN = MN.predicate(I);
    int32_t OldId = MO.findPredicate(PN.Name, PN.Arity);
    if (OldId < 0) {
      if (!PN.Clauses.empty()) // newly defined
        Edited.push_back(sigOf(MN, PN));
      continue;
    }
    const PredicateInfo &PO = MO.predicate(OldId);
    bool Same = PO.Clauses.size() == PN.Clauses.size();
    for (size_t C = 0; Same && C != PN.Clauses.size(); ++C) {
      const ClauseInfo &CO = PO.Clauses[C];
      const ClauseInfo &CN = PN.Clauses[C];
      Same = CO.NumInstr == CN.NumInstr;
      for (int32_t K = 0; Same && K != CN.NumInstr; ++K)
        Same = instrEquiv(MO, MO.at(CO.Entry + K), MN, MN.at(CN.Entry + K));
    }
    if (!Same)
      Edited.push_back(sigOf(MN, PN));
  }
  for (int32_t I = 0; I != MO.numPredicates(); ++I) {
    const PredicateInfo &PO = MO.predicate(I);
    if (PO.Clauses.empty())
      continue;
    int32_t NewId = MN.findPredicate(PO.Name, PO.Arity);
    if (NewId < 0 || MN.predicate(NewId).Clauses.empty()) // removed
      Edited.push_back(sigOf(MO, PO));
  }
  return Edited;
}

namespace {

/// Group key for (root pid, calling pattern) — same mixing constant as the
/// table's structural index.
uint64_t groupKey(int32_t Pid, const Pattern &Call) {
  return static_cast<uint64_t>(Call.hash()) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(Pid)) *
          0x9e3779b97f4a7c15ull);
}

int32_t resolveSig(const CodeModule &M, const PredSig &Sig) {
  Symbol Sym = M.symbols().lookup(Sig.Name);
  return Sym == ~0u ? -1 : M.findPredicate(Sym, Sig.Arity);
}

} // namespace

IncrementalScheduler::IncrementalScheduler(
    ExtensionTable &Table, AbstractMachine &Machine, const CodeModule &Module,
    const RunJournal &Prev, const std::vector<PredSig> &Edited,
    RunJournal *Out, uint64_t MaxSteps, SpecPool *Pool)
    : Table(Table), Machine(Machine), Module(Module), Prev(Prev),
      OutJournal(Out), MaxSteps(MaxSteps), Pool(Pool) {
  // Resolve every recorded predicate id against the (possibly recompiled)
  // module by name/arity. Ids that no longer resolve stay -1: their traces
  // can never replay, and roots keyed on them can never be popped either.
  int32_t MaxOld = -1;
  for (const auto &KV : Prev.sigs())
    MaxOld = std::max(MaxOld, KV.first);
  PidMap.assign(static_cast<size_t>(MaxOld + 1), -1);
  for (const auto &KV : Prev.sigs())
    PidMap[KV.first] = resolveSig(Module, KV.second);

  EditedNew.assign(static_cast<size_t>(Module.numPredicates()), 0);
  for (const PredSig &Sig : Edited) {
    int32_t Pid = resolveSig(Module, Sig);
    if (Pid >= 0)
      EditedNew[Pid] = 1;
  }

  // Group the traces by root key in recording order. Every root-resolvable
  // trace is registered — even unusable ones — so the Nth pop of a key
  // consumes the trace of the Nth committed run of that key; replays and
  // executions interleave without sliding the correspondence.
  const auto &Runs = Prev.runs();
  Usable.assign(Runs.size(), 0);
  for (size_t I = 0; I != Runs.size(); ++I) {
    const RunTrace &T = *Runs[I];
    int32_t RootPid = resolvePid(T.Pred);
    if (RootPid < 0)
      continue;
    std::vector<RootGroup> &Bucket = Groups[groupKey(RootPid, T.Call)];
    RootGroup *G = nullptr;
    for (RootGroup &Cand : Bucket)
      if (Cand.Pid == RootPid && *Cand.Call == T.Call) {
        G = &Cand;
        break;
      }
    if (!G) {
      Bucket.push_back(RootGroup{RootPid, &T.Call, {}, 0});
      G = &Bucket.back();
    }
    G->TraceIdx.push_back(I);

    // Structural usability: errored/unbalanced runs never replay; a run
    // that *executed* an edited predicate's clauses (as root or inline) is
    // stale by definition; and every referenced predicate must resolve, so
    // the trace's effects — and its carry-over into the next journal — are
    // expressible in the new module. Memo reads of edited predicates are
    // fine: validation compares the summary value, which is what the
    // recorded execution actually consumed.
    bool OK = !T.Error && !EditedNew[RootPid];
    for (const TraceOp &Op : T.Ops) {
      if (!OK)
        break;
      if (Op.Pred < 0)
        continue;
      int32_t NewPid = resolvePid(Op.Pred);
      if (NewPid < 0 || (Op.K == TraceOp::Enter && EditedNew[NewPid]))
        OK = false;
    }
    Usable[I] = OK ? 1 : 0;
  }
}

IncrementalScheduler::~IncrementalScheduler() = default;

const RunTrace *IncrementalScheduler::takeTrace(const ETEntry &Root,
                                                size_t &TraceIdxOut) {
  auto It = Groups.find(groupKey(Root.PredId, Root.Call));
  if (It == Groups.end())
    return nullptr;
  for (RootGroup &G : It->second) {
    if (G.Pid != Root.PredId || !(*G.Call == Root.Call))
      continue;
    if (G.Cursor >= G.TraceIdx.size())
      return nullptr;
    TraceIdxOut = G.TraceIdx[G.Cursor++];
    return Prev.runs()[TraceIdxOut].get();
  }
  return nullptr;
}

const RunTrace *IncrementalScheduler::peekTrace(const ETEntry &Root,
                                                size_t &TraceIdxOut,
                                                size_t &CursorAtOut,
                                                RootGroup *&GroupOut) {
  auto It = Groups.find(groupKey(Root.PredId, Root.Call));
  if (It == Groups.end())
    return nullptr;
  for (RootGroup &G : It->second) {
    if (G.Pid != Root.PredId || !(*G.Call == Root.Call))
      continue;
    if (G.Cursor >= G.TraceIdx.size())
      return nullptr;
    CursorAtOut = G.Cursor;
    TraceIdxOut = G.TraceIdx[G.Cursor];
    GroupOut = &G;
    return Prev.runs()[TraceIdxOut].get();
  }
  return nullptr;
}

/// One validated transition: both a schedule event (replayed against a
/// live-core clone to re-check query answers at the pop) and an apply-plan
/// op. Pattern pointers point into the owning trace, which the journal
/// keeps alive past the scheduler.
struct IncrementalScheduler::ReplayOp {
  enum Kind : uint8_t {
    Begin,  ///< A = entry idx: beginActivation + EverExplored
    Create, ///< A = pid, B = expected idx, Pat = calling pattern
    Read,   ///< A = reader, B = dep, Ver = version seen (apply reads live)
    Grow,   ///< A = entry idx, Ver = new version, Pat = new summary
    Query,  ///< A = entry idx, Answer = shouldReexplore result observed
  } K;
  int32_t A = -1;
  int32_t B = -1;
  uint32_t Ver = 0;
  bool Answer = false;
  const Pattern *Pat = nullptr;
};

/// A simulated replay: everything needed to decide, at the root's pop,
/// whether a from-scratch validation would succeed with this very plan.
struct IncrementalScheduler::ReplaySpec {
  int32_t RootIdx = -1;
  size_t TraceIdx = 0;    ///< into Prev.runs()
  size_t CursorAt = 0;    ///< group cursor the simulation assumed
  RootGroup *Group = nullptr;
  size_t BaseSize = 0;    ///< live table size at the freeze
  bool Valid = false;     ///< the simulation itself succeeded
  bool HasCreate = false; ///< the plan creates entries (size-sensitive)
  std::vector<ReplayOp> Ops;
  /// Live entries whose summary state the simulation consumed, with the
  /// (version, explored) observed — all must be unchanged at the pop.
  std::vector<ExtensionTable::BaseTouch> Touched;
};

bool IncrementalScheduler::simulate(const ETEntry &Root, const RunTrace &T,
                                    uint64_t TargetSweep,
                                    ReplaySpec &Out) const {
  if (!(Root.Success == T.PreSuccess))
    return false;

  // The simulation overlays the live table (never written) with the
  // effects the trace would apply, and drives a copy-on-write overlay of
  // the live core through the schedule transitions, so memo-vs-explore
  // decisions are answered exactly as the machine's shouldReexplore query
  // would be — at cost proportional to the trace, not the core.
  const size_t LiveSize = Table.size();
  Out.BaseSize = LiveSize;
  SchedulerCore::Overlay Clone(Core);
  Clone.setCurrentSweep(TargetSweep);

  struct SimNew {
    int32_t Pid;
    const Pattern *Call;
  };
  std::vector<SimNew> SimCreated;
  std::unordered_map<int32_t, std::vector<size_t>> SimByPid;
  std::unordered_map<int32_t, const Pattern *> SuccOverride;
  std::unordered_map<int32_t, uint32_t> VerOverride;
  std::unordered_map<int32_t, char> ExplOverride;

  // Record the (version, explored) state of every live entry consulted;
  // speculative revalidation checks these against the live table at the
  // pop. A whole-program driver's trace touches thousands of entries, so
  // dedup through a set rather than a scan of the touch list.
  std::unordered_set<int32_t> TouchedSet;
  auto Touch = [&](int32_t Idx) {
    if (static_cast<size_t>(Idx) >= LiveSize)
      return;
    if (!TouchedSet.insert(Idx).second)
      return;
    const ETEntry &E = Table.entryAt(static_cast<size_t>(Idx));
    Out.Touched.push_back({Idx, E.SuccessVersion, E.EverExplored});
  };
  // Record each schedule-query answer; revalidation replays the op
  // sequence against a clone of the live core and requires equal answers.
  auto Query = [&](int32_t Idx) {
    bool Answer = Clone.shouldReexplore(Idx);
    ReplayOp Op;
    Op.K = ReplayOp::Query;
    Op.A = Idx;
    Op.Answer = Answer;
    Out.Ops.push_back(Op);
    return Answer;
  };

  auto FindSim = [&](int32_t Pid, const Pattern &Call) -> int32_t {
    if (const ETEntry *E = Table.findExisting(Pid, Call)) {
      Touch(E->Idx);
      return E->Idx;
    }
    auto It = SimByPid.find(Pid);
    if (It != SimByPid.end())
      for (size_t I : It->second)
        if (*SimCreated[I].Call == Call)
          return static_cast<int32_t>(LiveSize + I);
    return -1;
  };
  auto SimSuccess = [&](int32_t Idx) -> const Pattern * {
    auto It = SuccOverride.find(Idx);
    if (It != SuccOverride.end())
      return It->second;
    if (static_cast<size_t>(Idx) < LiveSize) {
      Touch(Idx);
      const std::optional<Pattern> &S = Table.entryAt(Idx).Success;
      return S ? &*S : nullptr;
    }
    return nullptr; // created this run: no summary until it grows
  };
  auto SimVer = [&](int32_t Idx) -> uint32_t {
    auto It = VerOverride.find(Idx);
    if (It != VerOverride.end())
      return It->second;
    if (static_cast<size_t>(Idx) < LiveSize) {
      Touch(Idx);
      return Table.entryAt(Idx).SuccessVersion;
    }
    return 0;
  };
  auto SimExplored = [&](int32_t Idx) -> bool {
    auto It = ExplOverride.find(Idx);
    if (It != ExplOverride.end())
      return It->second != 0;
    if (static_cast<size_t>(Idx) >= LiveSize)
      return false;
    Touch(Idx);
    return Table.entryAt(Idx).EverExplored;
  };
  auto SummaryMatches = [&](int32_t Idx, const std::optional<Pattern> &Want) {
    const Pattern *Have = SimSuccess(Idx);
    if (!Have || !Want)
      return !Have && !Want;
    return *Have == *Want;
  };

  std::vector<int32_t> Stack;

  // runActivation's preamble: the root activation begins.
  Touch(Root.Idx);
  Clone.beginActivation(Root.Idx);
  ExplOverride[Root.Idx] = 1;
  Out.Ops.push_back({ReplayOp::Begin, Root.Idx, -1, 0, false, nullptr});
  Stack.push_back(Root.Idx);

  for (const TraceOp &Op : T.Ops) {
    switch (Op.K) {
    case TraceOp::Memo: {
      int32_t Idx = FindSim(resolvePid(Op.Pred), Op.Call);
      if (Idx < 0)
        return false; // execution would create-and-explore, not memo
      if (!SimExplored(Idx) || Query(Idx))
        return false; // execution would explore inline here
      if (!SummaryMatches(Idx, Op.Summary))
        return false; // the summary the run consumed has changed
      uint32_t Ver = SimVer(Idx);
      Clone.noteRead(Stack.back(), Idx, Ver);
      Out.Ops.push_back({ReplayOp::Read, Stack.back(), Idx, Ver, false,
                         nullptr});
      break;
    }
    case TraceOp::Enter: {
      int32_t Pid = resolvePid(Op.Pred);
      int32_t Idx = FindSim(Pid, Op.Call);
      if (Op.Created) {
        if (Idx >= 0)
          return false; // execution would find the entry, not create it
        Idx = static_cast<int32_t>(LiveSize + SimCreated.size());
        SimByPid[Pid].push_back(SimCreated.size());
        SimCreated.push_back({Pid, &Op.Call});
        Out.Ops.push_back({ReplayOp::Create, Pid, Idx, 0, false, &Op.Call});
        Out.HasCreate = true;
      } else {
        if (Idx < 0)
          return false; // execution would create it (Created mismatch)
        if (SimExplored(Idx) && !Query(Idx))
          return false; // execution would answer from the memo here
      }
      if (!SummaryMatches(Idx, Op.Summary))
        return false; // pre-exploration memo differs: clause runs diverge
      Clone.beginActivation(Idx);
      ExplOverride[Idx] = 1;
      Out.Ops.push_back({ReplayOp::Begin, Idx, -1, 0, false, nullptr});
      Stack.push_back(Idx);
      break;
    }
    case TraceOp::Exit: {
      assert(!Stack.empty() && "balanced trace (unbalanced are unusable)");
      int32_t Child = Stack.back();
      Stack.pop_back();
      // returnFromFrame: the parent's continuation reads the child's final
      // summary. The root's own exit has no parent and records no read.
      if (!Stack.empty()) {
        uint32_t Ver = SimVer(Child);
        Clone.noteRead(Stack.back(), Child, Ver);
        Out.Ops.push_back({ReplayOp::Read, Stack.back(), Child, Ver, false,
                           nullptr});
      }
      break;
    }
    case TraceOp::Grow: {
      assert(!Stack.empty() && Op.Summary && "grow applies to the open frame");
      int32_t Idx = Stack.back();
      uint32_t NewVer = SimVer(Idx) + 1;
      SuccOverride[Idx] = &*Op.Summary;
      VerOverride[Idx] = NewVer;
      Clone.noteChanged(Idx, NewVer);
      Out.Ops.push_back({ReplayOp::Grow, Idx, -1, NewVer, false,
                         &*Op.Summary});
      break;
    }
    }
  }
  return Stack.empty();
}

bool IncrementalScheduler::revalidate(const ReplaySpec &S) const {
  // The next trace for this root must still be the one simulated (the
  // Nth pop consumes the Nth trace; anything else broke FIFO pairing).
  if (!S.Group || S.Group->Cursor != S.CursorAt)
    return false;
  const RunTrace &T = *Prev.runs()[S.TraceIdx];
  // Budget, against the machine's *live* charged total.
  if (Machine.stepsExecuted() + T.Steps > MaxSteps)
    return false;
  // Creations claim positions [BaseSize, ...); a grown table took them.
  if (S.HasCreate && Table.size() != S.BaseSize)
    return false;
  // Every live entry the simulation consulted must be unchanged — this
  // covers the root's PreSuccess check and every summary-value and
  // explored-flag comparison the simulation made.
  for (const ExtensionTable::BaseTouch &B : S.Touched) {
    const ETEntry &E = Table.entryAt(static_cast<size_t>(B.Idx));
    if (E.SuccessVersion != B.SuccessVersion ||
        E.EverExplored != B.EverExplored)
      return false;
  }
  // Replay the schedule interactions against a clone of the live core:
  // every query answer must be the answer a from-scratch simulation at
  // this pop would observe (queue state can drift with no version change).
  bool AnyQuery = false;
  for (const ReplayOp &Op : S.Ops)
    if (Op.K == ReplayOp::Query) {
      AnyQuery = true;
      break;
    }
  if (!AnyQuery)
    return true;
  SchedulerCore::Overlay Clone(Core); // scratch replay; base never written
  for (const ReplayOp &Op : S.Ops) {
    switch (Op.K) {
    case ReplayOp::Begin:
      Clone.beginActivation(Op.A);
      break;
    case ReplayOp::Create:
      break; // position bookkeeping only; Begin follows
    case ReplayOp::Read:
      Clone.noteRead(Op.A, Op.B, Op.Ver);
      break;
    case ReplayOp::Grow:
      Clone.noteChanged(Op.A, Op.Ver);
      break;
    case ReplayOp::Query:
      if (Clone.shouldReexplore(Op.A) != Op.Answer)
        return false;
      break;
    }
  }
  return true;
}

void IncrementalScheduler::applySpec(const ReplaySpec &S) {
  for (const ReplayOp &Op : S.Ops) {
    switch (Op.K) {
    case ReplayOp::Begin: {
      ETEntry &E = Table.entryAt(static_cast<size_t>(Op.A));
      Core.beginActivation(E.Idx);
      E.EverExplored = true;
      break;
    }
    case ReplayOp::Create: {
      bool Created = false;
      ETEntry &E = Table.interner()
                       ? Table.findOrCreateByPattern(Op.A, *Op.Pat, Created)
                       : Table.findOrCreate(Op.A, *Op.Pat, Created);
      assert(Created && E.Idx == Op.B && "validated creation must hold");
      (void)E;
      (void)Created;
      Core.ensure(Table.size());
      break;
    }
    case ReplayOp::Read:
      Core.noteRead(Op.A, Op.B,
                    Table.entryAt(static_cast<size_t>(Op.B)).SuccessVersion);
      break;
    case ReplayOp::Grow: {
      ETEntry &E = Table.entryAt(static_cast<size_t>(Op.A));
      E.Success.emplace(*Op.Pat);
      if (PatternInterner *In = Table.interner())
        E.SuccessId = In->intern(*E.Success);
      Table.noteSuccessChanged(E);
      Core.noteChanged(E.Idx, E.SuccessVersion);
      break;
    }
    case ReplayOp::Query:
      break;
    }
  }
  const RunTrace &T = *Prev.runs()[S.TraceIdx];
  Machine.charge(T.Steps, T.Activations);
  if (OutJournal)
    OutJournal->appendRemapped(Prev.runs()[S.TraceIdx], PidMap);
  ++RStats.ReplayedRuns;
  RStats.ReplayedActivations += T.Activations;
}

void IncrementalScheduler::speculateReady(int32_t PoppedIdx) {
  // Candidate roots: the popped entry plus the rest of the sequential
  // drain's prefix, extended into the next sweep when the current ready
  // set is narrow. Only roots with a usable next trace are simulated —
  // the others take the sequential path at their pop regardless.
  struct Job {
    int32_t Idx;
    uint64_t Sweep;
    size_t TI;
    size_t CursorAt;
    RootGroup *Group;
    const RunTrace *T;
  };
  constexpr size_t kWarmBatch = 32;
  std::vector<Job> Jobs;
  auto Consider = [&](int32_t Idx, uint64_t Sweep) {
    Job J{Idx, Sweep, 0, 0, nullptr, nullptr};
    const ETEntry &Root = Table.entryAt(static_cast<size_t>(Idx));
    J.T = peekTrace(Root, J.TI, J.CursorAt, J.Group);
    if (J.T && Usable[J.TI])
      Jobs.push_back(J);
  };
  Consider(PoppedIdx, Core.currentSweep());
  for (int32_t R : Core.collectReady(Core.currentSweep(), kWarmBatch))
    if (R != PoppedIdx && Jobs.size() < kWarmBatch)
      Consider(R, Core.currentSweep());
  if (Jobs.size() < kWarmBatch)
    for (int32_t R : Core.collectReady(Core.currentSweep() + 1,
                                       kWarmBatch - Jobs.size()))
      Consider(R, Core.currentSweep() + 1);
  // A batch of one would simulate at the pop it serves — that is just the
  // sequential path with extra bookkeeping; skip the fan-out.
  if (Jobs.size() < 2)
    return;

  ++RStats.ReplayBatches;
  RStats.SpecReplays += Jobs.size();
  size_t Threads = static_cast<size_t>(Pool->threads());
  RStats.CriticalUnits += (Jobs.size() + Threads - 1) / Threads;

  SpecCache.clear();
  SpecCache.resize(Jobs.size());
  std::atomic<size_t> Next{0};
  Pool->runBatch([&](int) {
    for (size_t I = Next.fetch_add(1); I < Jobs.size();
         I = Next.fetch_add(1)) {
      ReplaySpec &S = SpecCache[I];
      const Job &J = Jobs[I];
      S.RootIdx = J.Idx;
      S.TraceIdx = J.TI;
      S.CursorAt = J.CursorAt;
      S.Group = J.Group;
      S.Valid = simulate(Table.entryAt(static_cast<size_t>(J.Idx)), *J.T,
                         J.Sweep, S);
    }
  });
  // Simulations that failed outright can never commit; drop them now so
  // the cache only holds plans awaiting their pop.
  for (size_t I = 0; I != SpecCache.size();) {
    if (!SpecCache[I].Valid) {
      SpecCache.erase(SpecCache.begin() + static_cast<long>(I));
      ++RStats.SpecDiscarded;
      continue;
    }
    ++I;
  }
}

bool IncrementalScheduler::takeCachedSpec(int32_t RootIdx, ReplaySpec &Out) {
  for (size_t I = 0; I != SpecCache.size(); ++I)
    if (SpecCache[I].RootIdx == RootIdx) {
      Out = std::move(SpecCache[I]);
      SpecCache.erase(SpecCache.begin() + static_cast<long>(I));
      return true;
    }
  return false;
}

void IncrementalScheduler::purgeDeadSpecs() {
  // A spec whose root's pending run was consumed inline by an executed
  // run will never be popped; drop it so a stale cache cannot block
  // further fan-outs.
  for (size_t I = 0; I != SpecCache.size();) {
    if (!Core.isQueued(SpecCache[I].RootIdx)) {
      SpecCache.erase(SpecCache.begin() + static_cast<long>(I));
      ++RStats.SpecDiscarded;
      continue;
    }
    ++I;
  }
}

bool IncrementalScheduler::tryReplay(ETEntry &Root) {
  // Speculative path: a pool-simulated plan for this root commits if it
  // still describes exactly what a from-scratch validation would do.
  ReplaySpec Spec;
  if (takeCachedSpec(Root.Idx, Spec)) {
    if (revalidate(Spec)) {
      ++Spec.Group->Cursor; // consume the trace, exactly as takeTrace would
      applySpec(Spec);
      ++RStats.SpecCommitted;
      return true;
    }
    ++RStats.SpecDiscarded; // fall through to the sequential path
  }

  size_t TI = 0;
  const RunTrace *T = takeTrace(Root, TI);
  if (!T || !Usable[TI])
    return false;
  // A run that would trip the instruction budget errors partway through
  // with partial effects; only real execution reproduces that exactly.
  if (Machine.stepsExecuted() + T->Steps > MaxSteps)
    return false;

  ReplaySpec Fresh;
  Fresh.RootIdx = Root.Idx;
  Fresh.TraceIdx = TI;
  if (!simulate(Root, *T, Core.currentSweep(), Fresh))
    return false;
  applySpec(Fresh);
  return true;
}

IncrementalScheduler::Status IncrementalScheduler::run(ETEntry &Root,
                                                       int MaxSweeps) {
  assert(Root.Idx >= 0 && "root entry must live in the table");
  // The sink stays installed for the whole drain: executed fallbacks run
  // on the machine, which reports through it (and records fresh traces
  // into the session's attached journal).
  Machine.setDependencySink(this);
  Core.setCurrentSweep(1);
  Status Out = Status::Converged;
  if (MaxSweeps < 1) {
    Out = Status::BudgetHit;
  } else {
    Core.ensure(Table.size());
    Core.enqueue(Root.Idx, Core.currentSweep());
    while (std::optional<SchedulerCore::QNode> N = Core.popLive()) {
      auto [Sweep, Idx] = *N;
      if (Sweep > Core.currentSweep()) {
        if (Sweep > static_cast<uint64_t>(MaxSweeps)) {
          Out = Status::BudgetHit;
          break;
        }
        Core.setCurrentSweep(Sweep);
      }
      ++Core.statsMut().Runs;
      ETEntry &E = Table.entryAt(static_cast<size_t>(Idx));
      // Parallel warm drain: with no simulation in flight, freeze here
      // and fan the ready set's replay validation out to the pool.
      if (Pool && Pool->threads() > 1 && SpecCache.empty())
        speculateReady(Idx);
      if (tryReplay(E)) {
        purgeDeadSpecs();
        continue;
      }
      uint64_t Acts0 = Machine.activationsExplored();
      if (Machine.runActivation(E) == AbsRunStatus::Error) {
        Out = Status::Error;
        break;
      }
      ++RStats.ExecutedRuns;
      RStats.ExecutedActivations += Machine.activationsExplored() - Acts0;
      purgeDeadSpecs();
    }
  }
  Core.statsMut().Sweeps = MaxSweeps < 1 ? 0 : Core.currentSweep();
  RStats.SpecDiscarded += SpecCache.size(); // orphaned in-flight simulations
  SpecCache.clear();
  Machine.setDependencySink(nullptr);
  return Out;
}
