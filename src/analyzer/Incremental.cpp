//===- analyzer/Incremental.cpp - Incremental re-analysis driver ----------===//
//
// Validated journal replay: see the protocol description in Incremental.h.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Incremental.h"

#include "compiler/ProgramCompiler.h"

#include <algorithm>
#include <cassert>

using namespace awam;

namespace {

/// Do two instructions perform the same operation, with pool/table indices
/// resolved to their meaning? Both modules must share one SymbolTable (the
/// callers guarantee it), so Symbol values compare directly. Address-typed
/// operands (try/retry/trust chains, switches, jumps) are conservatively
/// unequal — clause code blocks never contain them, so this only fires if
/// that invariant ever changes, and it fails safe (pred counted edited).
bool instrEquiv(const CodeModule &MA, const Instruction &A,
                const CodeModule &MB, const Instruction &B) {
  if (A.Op != B.Op)
    return false;
  switch (A.Op) {
  case Opcode::GetConst:
  case Opcode::PutConst:
  case Opcode::UnifyConst:
    return A.B == B.B && MA.constAt(A.A) == MB.constAt(B.A);
  case Opcode::GetStructure:
  case Opcode::PutStructure:
    return A.B == B.B && MA.functorAt(A.A) == MB.functorAt(B.A);
  case Opcode::Call:
  case Opcode::Execute: {
    const PredicateInfo &PA = MA.predicate(A.A);
    const PredicateInfo &PB = MB.predicate(B.A);
    return PA.Name == PB.Name && PA.Arity == PB.Arity;
  }
  case Opcode::Try:
  case Opcode::Retry:
  case Opcode::Trust:
  case Opcode::Jump:
  case Opcode::SwitchOnTerm:
  case Opcode::SwitchOnConstant:
  case Opcode::SwitchOnStructure:
    return false;
  default:
    return A.A == B.A && A.B == B.B;
  }
}

} // namespace

std::vector<PredSig> awam::diffPrograms(const CompiledProgram &Old,
                                        const CompiledProgram &New) {
  const CodeModule &MO = *Old.Module;
  const CodeModule &MN = *New.Module;
  std::vector<PredSig> Edited;
  auto sigOf = [](const CodeModule &M, const PredicateInfo &P) {
    return PredSig{std::string(M.symbols().name(P.Name)), P.Arity};
  };
  if (&MO.symbols() != &MN.symbols()) {
    for (int32_t I = 0; I != MO.numPredicates(); ++I)
      Edited.push_back(sigOf(MO, MO.predicate(I)));
    for (int32_t I = 0; I != MN.numPredicates(); ++I)
      Edited.push_back(sigOf(MN, MN.predicate(I)));
    return Edited;
  }
  for (int32_t I = 0; I != MN.numPredicates(); ++I) {
    const PredicateInfo &PN = MN.predicate(I);
    int32_t OldId = MO.findPredicate(PN.Name, PN.Arity);
    if (OldId < 0) {
      if (!PN.Clauses.empty()) // newly defined
        Edited.push_back(sigOf(MN, PN));
      continue;
    }
    const PredicateInfo &PO = MO.predicate(OldId);
    bool Same = PO.Clauses.size() == PN.Clauses.size();
    for (size_t C = 0; Same && C != PN.Clauses.size(); ++C) {
      const ClauseInfo &CO = PO.Clauses[C];
      const ClauseInfo &CN = PN.Clauses[C];
      Same = CO.NumInstr == CN.NumInstr;
      for (int32_t K = 0; Same && K != CN.NumInstr; ++K)
        Same = instrEquiv(MO, MO.at(CO.Entry + K), MN, MN.at(CN.Entry + K));
    }
    if (!Same)
      Edited.push_back(sigOf(MN, PN));
  }
  for (int32_t I = 0; I != MO.numPredicates(); ++I) {
    const PredicateInfo &PO = MO.predicate(I);
    if (PO.Clauses.empty())
      continue;
    int32_t NewId = MN.findPredicate(PO.Name, PO.Arity);
    if (NewId < 0 || MN.predicate(NewId).Clauses.empty()) // removed
      Edited.push_back(sigOf(MO, PO));
  }
  return Edited;
}

namespace {

/// Group key for (root pid, calling pattern) — same mixing constant as the
/// table's structural index.
uint64_t groupKey(int32_t Pid, const Pattern &Call) {
  return static_cast<uint64_t>(Call.hash()) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(Pid)) *
          0x9e3779b97f4a7c15ull);
}

int32_t resolveSig(const CodeModule &M, const PredSig &Sig) {
  Symbol Sym = M.symbols().lookup(Sig.Name);
  return Sym == ~0u ? -1 : M.findPredicate(Sym, Sig.Arity);
}

} // namespace

IncrementalScheduler::IncrementalScheduler(
    ExtensionTable &Table, AbstractMachine &Machine, const CodeModule &Module,
    const RunJournal &Prev, const std::vector<PredSig> &Edited,
    RunJournal *Out, uint64_t MaxSteps)
    : Table(Table), Machine(Machine), Module(Module), Prev(Prev),
      OutJournal(Out), MaxSteps(MaxSteps) {
  // Resolve every recorded predicate id against the (possibly recompiled)
  // module by name/arity. Ids that no longer resolve stay -1: their traces
  // can never replay, and roots keyed on them can never be popped either.
  int32_t MaxOld = -1;
  for (const auto &KV : Prev.sigs())
    MaxOld = std::max(MaxOld, KV.first);
  PidMap.assign(static_cast<size_t>(MaxOld + 1), -1);
  for (const auto &KV : Prev.sigs())
    PidMap[KV.first] = resolveSig(Module, KV.second);

  EditedNew.assign(static_cast<size_t>(Module.numPredicates()), 0);
  for (const PredSig &Sig : Edited) {
    int32_t Pid = resolveSig(Module, Sig);
    if (Pid >= 0)
      EditedNew[Pid] = 1;
  }

  // Group the traces by root key in recording order. Every root-resolvable
  // trace is registered — even unusable ones — so the Nth pop of a key
  // consumes the trace of the Nth committed run of that key; replays and
  // executions interleave without sliding the correspondence.
  const auto &Runs = Prev.runs();
  Usable.assign(Runs.size(), 0);
  for (size_t I = 0; I != Runs.size(); ++I) {
    const RunTrace &T = *Runs[I];
    int32_t RootPid = resolvePid(T.Pred);
    if (RootPid < 0)
      continue;
    std::vector<RootGroup> &Bucket = Groups[groupKey(RootPid, T.Call)];
    RootGroup *G = nullptr;
    for (RootGroup &Cand : Bucket)
      if (Cand.Pid == RootPid && *Cand.Call == T.Call) {
        G = &Cand;
        break;
      }
    if (!G) {
      Bucket.push_back(RootGroup{RootPid, &T.Call, {}, 0});
      G = &Bucket.back();
    }
    G->TraceIdx.push_back(I);

    // Structural usability: errored/unbalanced runs never replay; a run
    // that *executed* an edited predicate's clauses (as root or inline) is
    // stale by definition; and every referenced predicate must resolve, so
    // the trace's effects — and its carry-over into the next journal — are
    // expressible in the new module. Memo reads of edited predicates are
    // fine: validation compares the summary value, which is what the
    // recorded execution actually consumed.
    bool OK = !T.Error && !EditedNew[RootPid];
    for (const TraceOp &Op : T.Ops) {
      if (!OK)
        break;
      if (Op.Pred < 0)
        continue;
      int32_t NewPid = resolvePid(Op.Pred);
      if (NewPid < 0 || (Op.K == TraceOp::Enter && EditedNew[NewPid]))
        OK = false;
    }
    Usable[I] = OK ? 1 : 0;
  }
}

const RunTrace *IncrementalScheduler::takeTrace(const ETEntry &Root,
                                                size_t &TraceIdxOut) {
  auto It = Groups.find(groupKey(Root.PredId, Root.Call));
  if (It == Groups.end())
    return nullptr;
  for (RootGroup &G : It->second) {
    if (G.Pid != Root.PredId || !(*G.Call == Root.Call))
      continue;
    if (G.Cursor >= G.TraceIdx.size())
      return nullptr;
    TraceIdxOut = G.TraceIdx[G.Cursor++];
    return Prev.runs()[TraceIdxOut].get();
  }
  return nullptr;
}

bool IncrementalScheduler::tryReplay(ETEntry &Root) {
  size_t TI = 0;
  const RunTrace *T = takeTrace(Root, TI);
  if (!T || !Usable[TI])
    return false;
  // A run that would trip the instruction budget errors partway through
  // with partial effects; only real execution reproduces that exactly.
  if (Machine.stepsExecuted() + T->Steps > MaxSteps)
    return false;
  if (!(Root.Success == T->PreSuccess))
    return false;

  // --- Pass 1: validate by simulation, emitting an apply plan. ----------
  //
  // The simulation overlays the live table (never written) with the
  // effects the trace would apply, and drives a clone of the live core
  // through the schedule transitions, so memo-vs-explore decisions are
  // answered exactly as the machine's shouldReexplore query would be.
  const size_t LiveSize = Table.size();
  SchedulerCore Clone = Core;

  struct SimNew {
    int32_t Pid;
    const Pattern *Call;
  };
  std::vector<SimNew> SimCreated;
  std::unordered_map<int32_t, const Pattern *> SuccOverride;
  std::unordered_map<int32_t, uint32_t> VerOverride;
  std::unordered_map<int32_t, char> ExplOverride;

  auto FindSim = [&](int32_t Pid, const Pattern &Call) -> int32_t {
    if (const ETEntry *E = Table.findExisting(Pid, Call))
      return E->Idx;
    for (size_t I = 0; I != SimCreated.size(); ++I)
      if (SimCreated[I].Pid == Pid && *SimCreated[I].Call == Call)
        return static_cast<int32_t>(LiveSize + I);
    return -1;
  };
  auto SimSuccess = [&](int32_t Idx) -> const Pattern * {
    auto It = SuccOverride.find(Idx);
    if (It != SuccOverride.end())
      return It->second;
    if (static_cast<size_t>(Idx) < LiveSize) {
      const std::optional<Pattern> &S = Table.entryAt(Idx).Success;
      return S ? &*S : nullptr;
    }
    return nullptr; // created this run: no summary until it grows
  };
  auto SimVer = [&](int32_t Idx) -> uint32_t {
    auto It = VerOverride.find(Idx);
    if (It != VerOverride.end())
      return It->second;
    return static_cast<size_t>(Idx) < LiveSize
               ? Table.entryAt(Idx).SuccessVersion
               : 0;
  };
  auto SimExplored = [&](int32_t Idx) -> bool {
    auto It = ExplOverride.find(Idx);
    if (It != ExplOverride.end())
      return It->second != 0;
    return static_cast<size_t>(Idx) < LiveSize && Table.entryAt(Idx).EverExplored;
  };
  auto SummaryMatches = [&](int32_t Idx, const std::optional<Pattern> &Want) {
    const Pattern *Have = SimSuccess(Idx);
    if (!Have || !Want)
      return !Have && !Want;
    return *Have == *Want;
  };

  struct PlanOp {
    enum Kind : uint8_t {
      Begin,  ///< A = entry idx: beginActivation + EverExplored
      Create, ///< A = pid, B = expected idx, Pat = calling pattern
      Read,   ///< A = reader idx, B = dep idx (version read live at apply)
      Grow,   ///< A = entry idx, Pat = new summary
    } K;
    int32_t A = -1;
    int32_t B = -1;
    const Pattern *Pat = nullptr;
  };
  std::vector<PlanOp> Plan;
  std::vector<int32_t> Stack;

  // runActivation's preamble: the root activation begins.
  Clone.beginActivation(Root.Idx);
  ExplOverride[Root.Idx] = 1;
  Plan.push_back({PlanOp::Begin, Root.Idx, -1, nullptr});
  Stack.push_back(Root.Idx);

  for (const TraceOp &Op : T->Ops) {
    switch (Op.K) {
    case TraceOp::Memo: {
      int32_t Idx = FindSim(resolvePid(Op.Pred), Op.Call);
      if (Idx < 0)
        return false; // execution would create-and-explore, not memo
      if (!SimExplored(Idx) || Clone.shouldReexplore(Idx))
        return false; // execution would explore inline here
      if (!SummaryMatches(Idx, Op.Summary))
        return false; // the summary the run consumed has changed
      Clone.noteRead(Stack.back(), Idx, SimVer(Idx));
      Plan.push_back({PlanOp::Read, Stack.back(), Idx, nullptr});
      break;
    }
    case TraceOp::Enter: {
      int32_t Pid = resolvePid(Op.Pred);
      int32_t Idx = FindSim(Pid, Op.Call);
      if (Op.Created) {
        if (Idx >= 0)
          return false; // execution would find the entry, not create it
        Idx = static_cast<int32_t>(LiveSize + SimCreated.size());
        SimCreated.push_back({Pid, &Op.Call});
        Plan.push_back({PlanOp::Create, Pid, Idx, &Op.Call});
      } else {
        if (Idx < 0)
          return false; // execution would create it (Created mismatch)
        if (SimExplored(Idx) && !Clone.shouldReexplore(Idx))
          return false; // execution would answer from the memo here
      }
      if (!SummaryMatches(Idx, Op.Summary))
        return false; // pre-exploration memo differs: clause runs diverge
      Clone.beginActivation(Idx);
      ExplOverride[Idx] = 1;
      Plan.push_back({PlanOp::Begin, Idx, -1, nullptr});
      Stack.push_back(Idx);
      break;
    }
    case TraceOp::Exit: {
      assert(!Stack.empty() && "balanced trace (unbalanced are unusable)");
      int32_t Child = Stack.back();
      Stack.pop_back();
      // returnFromFrame: the parent's continuation reads the child's final
      // summary. The root's own exit has no parent and records no read.
      if (!Stack.empty()) {
        Clone.noteRead(Stack.back(), Child, SimVer(Child));
        Plan.push_back({PlanOp::Read, Stack.back(), Child, nullptr});
      }
      break;
    }
    case TraceOp::Grow: {
      assert(!Stack.empty() && Op.Summary && "grow applies to the open frame");
      int32_t Idx = Stack.back();
      SuccOverride[Idx] = &*Op.Summary;
      uint32_t NewVer = SimVer(Idx) + 1;
      VerOverride[Idx] = NewVer;
      Clone.noteChanged(Idx, NewVer);
      Plan.push_back({PlanOp::Grow, Idx, -1, &*Op.Summary});
      break;
    }
    }
  }
  if (!Stack.empty())
    return false;

  // --- Pass 2: apply the validated plan to the live state. --------------
  for (const PlanOp &Op : Plan) {
    switch (Op.K) {
    case PlanOp::Begin: {
      ETEntry &E = Table.entryAt(static_cast<size_t>(Op.A));
      Core.beginActivation(E.Idx);
      E.EverExplored = true;
      break;
    }
    case PlanOp::Create: {
      bool Created = false;
      ETEntry &E = Table.interner()
                       ? Table.findOrCreateByPattern(Op.A, *Op.Pat, Created)
                       : Table.findOrCreate(Op.A, *Op.Pat, Created);
      assert(Created && E.Idx == Op.B && "validated creation must hold");
      (void)E;
      (void)Created;
      Core.ensure(Table.size());
      break;
    }
    case PlanOp::Read:
      Core.noteRead(Op.A, Op.B,
                    Table.entryAt(static_cast<size_t>(Op.B)).SuccessVersion);
      break;
    case PlanOp::Grow: {
      ETEntry &E = Table.entryAt(static_cast<size_t>(Op.A));
      E.Success.emplace(*Op.Pat);
      if (PatternInterner *In = Table.interner())
        E.SuccessId = In->intern(*E.Success);
      Table.noteSuccessChanged(E);
      Core.noteChanged(E.Idx, E.SuccessVersion);
      break;
    }
    }
  }
  Machine.charge(T->Steps, T->Activations);
  if (OutJournal)
    OutJournal->appendRemapped(Prev.runs()[TI], PidMap);
  ++RStats.ReplayedRuns;
  RStats.ReplayedActivations += T->Activations;
  return true;
}

IncrementalScheduler::Status IncrementalScheduler::run(ETEntry &Root,
                                                       int MaxSweeps) {
  assert(Root.Idx >= 0 && "root entry must live in the table");
  // The sink stays installed for the whole drain: executed fallbacks run
  // on the machine, which reports through it (and records fresh traces
  // into the session's attached journal).
  Machine.setDependencySink(this);
  Core.setCurrentSweep(1);
  Status Out = Status::Converged;
  if (MaxSweeps < 1) {
    Out = Status::BudgetHit;
  } else {
    Core.ensure(Table.size());
    Core.enqueue(Root.Idx, Core.currentSweep());
    while (std::optional<SchedulerCore::QNode> N = Core.popLive()) {
      auto [Sweep, Idx] = *N;
      if (Sweep > Core.currentSweep()) {
        if (Sweep > static_cast<uint64_t>(MaxSweeps)) {
          Out = Status::BudgetHit;
          break;
        }
        Core.setCurrentSweep(Sweep);
      }
      ++Core.statsMut().Runs;
      ETEntry &E = Table.entryAt(static_cast<size_t>(Idx));
      if (tryReplay(E))
        continue;
      uint64_t Acts0 = Machine.activationsExplored();
      if (Machine.runActivation(E) == AbsRunStatus::Error) {
        Out = Status::Error;
        break;
      }
      ++RStats.ExecutedRuns;
      RStats.ExecutedActivations += Machine.activationsExplored() - Acts0;
    }
  }
  Core.statsMut().Sweeps = MaxSweeps < 1 ? 0 : Core.currentSweep();
  Machine.setDependencySink(nullptr);
  return Out;
}
