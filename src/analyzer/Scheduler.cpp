//===- analyzer/Scheduler.cpp - Semi-naive worklist evaluation ------------===//

#include "analyzer/Scheduler.h"

#include <cassert>
#include <functional>

using namespace awam;

void SchedulerCore::ensure(size_t N) {
  if (Readers.size() >= N)
    return;
  Readers.resize(N);
  RunSeq.resize(N, 0);
  QueuedSweep.resize(N, 0);
  InQueue.resize(N, 0);
  LastRunSweep.resize(N, 0);
}

void SchedulerCore::enqueue(int32_t Idx, uint64_t Sweep) {
  ensure(static_cast<size_t>(Idx) + 1);
  if (InQueue[Idx] && QueuedSweep[Idx] <= Sweep)
    return; // already queued at least as early
  InQueue[Idx] = 1;
  QueuedSweep[Idx] = Sweep;
  ++S.Enqueues;
  Heap.emplace_back(Sweep, Idx);
  std::push_heap(Heap.begin(), Heap.end(), std::greater<>());
}

std::optional<SchedulerCore::QNode> SchedulerCore::popLive() {
  while (!Heap.empty()) {
    QNode N = Heap.front();
    std::pop_heap(Heap.begin(), Heap.end(), std::greater<>());
    Heap.pop_back();
    if (InQueue[N.second] && QueuedSweep[N.second] == N.first)
      return N;
    // else: consumed inline or re-queued; lazy deletion
  }
  return std::nullopt;
}

void SchedulerCore::beginActivation(int32_t Idx) {
  ensure(static_cast<size_t>(Idx) + 1);
  InQueue[Idx] = 0; // any pending run is consumed by this one
  LastRunSweep[Idx] = CurSweep;
  // Supersede the previous run's reads: it is being redone from scratch,
  // so its recorded edges no longer describe a live read.
  ++RunSeq[Idx];
}

void SchedulerCore::noteRead(int32_t Reader, int32_t Dep,
                             uint32_t VersionSeen) {
  ensure(static_cast<size_t>(Dep) + 1);
  std::vector<Edge> &Vec = Readers[Dep];
  // A clause body often reads the same summary several times in a row
  // (one call per clause trial); collapse trivially repeated edges.
  if (!Vec.empty() && Vec.back().Reader == Reader &&
      Vec.back().ReaderRun == RunSeq[Reader] &&
      Vec.back().VersionSeen == VersionSeen)
    return;
  Vec.push_back({Reader, RunSeq[Reader], VersionSeen});
  ++S.EdgesRecorded;
}

void SchedulerCore::noteChanged(int32_t Idx, uint32_t SuccessVersion) {
  ensure(static_cast<size_t>(Idx) + 1);
  std::vector<Edge> &Vec = Readers[Idx];
  for (size_t I = 0; I < Vec.size();) {
    const Edge &Ed = Vec[I];
    if (RunSeq[Ed.Reader] != Ed.ReaderRun) {
      // Superseded: the reader re-ran since this edge was recorded.
      Vec[I] = Vec.back();
      Vec.pop_back();
      ++S.EdgesRetired;
      continue;
    }
    if (Ed.VersionSeen != SuccessVersion) {
      // Stale read. A reader positioned after the change that has not run
      // this sweep still gets its turn in the current sweep (the naive
      // DFS would reach it after the update); anything else waits for the
      // next sweep, like a naive restart.
      uint64_t Target =
          (LastRunSweep[Ed.Reader] == CurSweep || Ed.Reader <= Idx)
              ? CurSweep + 1
              : CurSweep;
      enqueue(Ed.Reader, Target);
      // The re-run re-reads and re-records; drop the consumed edge.
      Vec[I] = Vec.back();
      Vec.pop_back();
      ++S.EdgesRetired;
      continue;
    }
    ++I;
  }
}

std::vector<char>
SchedulerCore::reverseClosure(const std::vector<int32_t> &Seeds) const {
  std::vector<char> Mark(Readers.size(), 0);
  std::vector<int32_t> Work;
  for (int32_t Seed : Seeds)
    if (static_cast<size_t>(Seed) < Mark.size() && !Mark[Seed]) {
      Mark[Seed] = 1;
      Work.push_back(Seed);
    }
  while (!Work.empty()) {
    int32_t Dep = Work.back();
    Work.pop_back();
    for (const Edge &Ed : Readers[Dep])
      if (!Mark[Ed.Reader]) {
        Mark[Ed.Reader] = 1;
        Work.push_back(Ed.Reader);
      }
  }
  return Mark;
}

bool SchedulerCore::hasReaderEdge(int32_t Dep, int32_t Reader) const {
  if (static_cast<size_t>(Dep) >= Readers.size())
    return false;
  for (const Edge &Ed : Readers[Dep])
    if (Ed.Reader == Reader)
      return true;
  return false;
}

std::vector<std::pair<int32_t, int32_t>> SchedulerCore::edgePairs() const {
  std::vector<std::pair<int32_t, int32_t>> Out;
  for (size_t Dep = 0; Dep != Readers.size(); ++Dep)
    for (const Edge &Ed : Readers[Dep])
      Out.emplace_back(static_cast<int32_t>(Dep), Ed.Reader);
  return Out;
}

std::vector<int32_t> SchedulerCore::collectReady(uint64_t Sweep,
                                                 size_t Max) const {
  std::vector<int32_t> Ready;
  for (const QNode &N : Heap)
    if (N.first == Sweep && InQueue[N.second] && QueuedSweep[N.second] == Sweep)
      Ready.push_back(N.second);
  std::sort(Ready.begin(), Ready.end());
  Ready.erase(std::unique(Ready.begin(), Ready.end()), Ready.end());
  if (Ready.size() > Max)
    Ready.resize(Max);
  return Ready;
}

SchedulerCore::Overlay::EntryState &SchedulerCore::Overlay::touch(int32_t Idx) {
  auto [It, Fresh] = Over.try_emplace(Idx);
  if (Fresh) {
    bool Known = static_cast<size_t>(Idx) < Base.InQueue.size();
    It->second.InQueue = Known && Base.InQueue[Idx];
    It->second.QueuedSweep = Known ? Base.QueuedSweep[Idx] : 0;
    It->second.LastRunSweep = Known ? Base.LastRunSweep[Idx] : 0;
    It->second.RunSeq = Known ? Base.RunSeq[Idx] : 0;
  }
  return It->second;
}

uint32_t SchedulerCore::Overlay::runSeq(int32_t Idx) const {
  auto It = Over.find(Idx);
  if (It != Over.end())
    return It->second.RunSeq;
  return static_cast<size_t>(Idx) < Base.RunSeq.size() ? Base.RunSeq[Idx] : 0;
}

uint64_t SchedulerCore::Overlay::lastRunSweep(int32_t Idx) const {
  auto It = Over.find(Idx);
  if (It != Over.end())
    return It->second.LastRunSweep;
  return static_cast<size_t>(Idx) < Base.LastRunSweep.size()
             ? Base.LastRunSweep[Idx]
             : 0;
}

void SchedulerCore::Overlay::enqueue(int32_t Idx, uint64_t Sweep) {
  EntryState &E = touch(Idx);
  if (E.InQueue && E.QueuedSweep <= Sweep)
    return; // already queued at least as early
  E.InQueue = true;
  E.QueuedSweep = Sweep;
}

void SchedulerCore::Overlay::beginActivation(int32_t Idx) {
  EntryState &E = touch(Idx);
  E.InQueue = false;
  E.LastRunSweep = CurSweep;
  ++E.RunSeq;
}

void SchedulerCore::Overlay::noteRead(int32_t Reader, int32_t Dep,
                                      uint32_t VersionSeen) {
  std::vector<Edge> &Vec = AddedEdges[Dep];
  if (!Vec.empty() && Vec.back().Reader == Reader &&
      Vec.back().ReaderRun == runSeq(Reader) &&
      Vec.back().VersionSeen == VersionSeen)
    return; // collapse trivially repeated edges, as the real core does
  Vec.push_back({Reader, runSeq(Reader), VersionSeen});
}

void SchedulerCore::Overlay::noteChanged(int32_t Idx,
                                         uint32_t SuccessVersion) {
  // Re-enqueue stale readers exactly as SchedulerCore::noteChanged would,
  // over the base's edges plus the ones this simulation recorded. Base
  // edges are not erased when consumed: a superseded edge stays dead
  // under the RunSeq check, and a consumed stale edge can only re-issue
  // an enqueue the keep-earliest rule absorbs (its target sweep never
  // moves earlier between scans — LastRunSweep is monotone and the
  // Reader<=Idx term is fixed).
  auto Scan = [&](const Edge &Ed) {
    if (runSeq(Ed.Reader) != Ed.ReaderRun)
      return; // superseded
    if (Ed.VersionSeen == SuccessVersion)
      return;
    uint64_t Target =
        (lastRunSweep(Ed.Reader) == CurSweep || Ed.Reader <= Idx)
            ? CurSweep + 1
            : CurSweep;
    enqueue(Ed.Reader, Target);
  };
  if (static_cast<size_t>(Idx) < Base.Readers.size())
    for (const Edge &Ed : Base.Readers[Idx])
      Scan(Ed);
  auto It = AddedEdges.find(Idx);
  if (It != AddedEdges.end())
    for (const Edge &Ed : It->second)
      Scan(Ed);
}

WorklistScheduler::Status WorklistScheduler::run(ETEntry &Root,
                                                 int MaxSweeps) {
  assert(Root.Idx >= 0 && "root entry must live in the table");
  Machine.setDependencySink(this);
  Core.setCurrentSweep(1);
  Status Out = Status::Converged;
  if (MaxSweeps < 1) {
    Out = Status::BudgetHit;
  } else {
    Core.ensure(Table.size());
    Core.enqueue(Root.Idx, Core.currentSweep());
    while (std::optional<SchedulerCore::QNode> N = Core.popLive()) {
      auto [Sweep, Idx] = *N;
      if (Sweep > Core.currentSweep()) {
        if (Sweep > static_cast<uint64_t>(MaxSweeps)) {
          Out = Status::BudgetHit;
          break;
        }
        Core.setCurrentSweep(Sweep);
      }
      ++Core.statsMut().Runs;
      if (Machine.runActivation(Table.entryAt(static_cast<size_t>(Idx))) ==
          AbsRunStatus::Error) {
        Out = Status::Error;
        break;
      }
    }
  }
  // sweeps actually executed
  Core.statsMut().Sweeps = MaxSweeps < 1 ? 0 : Core.currentSweep();
  Machine.setDependencySink(nullptr);
  return Out;
}
