//===- analyzer/Scheduler.cpp - Semi-naive worklist evaluation ------------===//

#include "analyzer/Scheduler.h"

#include <cassert>

using namespace awam;

void WorklistScheduler::ensure(size_t N) {
  if (Readers.size() >= N)
    return;
  Readers.resize(N);
  RunSeq.resize(N, 0);
  QueuedSweep.resize(N, 0);
  InQueue.resize(N, 0);
  LastRunSweep.resize(N, 0);
}

void WorklistScheduler::enqueue(int32_t Idx, uint64_t Sweep) {
  ensure(static_cast<size_t>(Idx) + 1);
  if (InQueue[Idx] && QueuedSweep[Idx] <= Sweep)
    return; // already queued at least as early
  InQueue[Idx] = 1;
  QueuedSweep[Idx] = Sweep;
  ++S.Enqueues;
  Heap.emplace(Sweep, Idx);
}

bool WorklistScheduler::shouldReexplore(const ETEntry &E) {
  // Re-explore inline only when a run is pending for the current sweep:
  // that is where the naive driver's DFS would re-explore the entry this
  // iteration. A run queued for a later sweep stays queued — the naive
  // driver would answer this call from the memo too.
  return static_cast<size_t>(E.Idx) < InQueue.size() && InQueue[E.Idx] &&
         QueuedSweep[E.Idx] <= CurSweep;
}

void WorklistScheduler::beginActivation(const ETEntry &E) {
  ensure(static_cast<size_t>(E.Idx) + 1);
  InQueue[E.Idx] = 0; // any pending run is consumed by this one
  LastRunSweep[E.Idx] = CurSweep;
  // Supersede the previous run's reads: it is being redone from scratch,
  // so its recorded edges no longer describe a live read.
  ++RunSeq[E.Idx];
}

void WorklistScheduler::noteRead(const ETEntry &Reader, const ETEntry &Dep,
                                 uint32_t VersionSeen) {
  ensure(static_cast<size_t>(Dep.Idx) + 1);
  std::vector<Edge> &Vec = Readers[Dep.Idx];
  // A clause body often reads the same summary several times in a row
  // (one call per clause trial); collapse trivially repeated edges.
  if (!Vec.empty() && Vec.back().Reader == Reader.Idx &&
      Vec.back().ReaderRun == RunSeq[Reader.Idx] &&
      Vec.back().VersionSeen == VersionSeen)
    return;
  Vec.push_back({Reader.Idx, RunSeq[Reader.Idx], VersionSeen});
  ++S.EdgesRecorded;
}

void WorklistScheduler::noteChanged(const ETEntry &E) {
  ensure(static_cast<size_t>(E.Idx) + 1);
  std::vector<Edge> &Vec = Readers[E.Idx];
  for (size_t I = 0; I < Vec.size();) {
    const Edge &Ed = Vec[I];
    if (RunSeq[Ed.Reader] != Ed.ReaderRun) {
      // Superseded: the reader re-ran since this edge was recorded.
      Vec[I] = Vec.back();
      Vec.pop_back();
      ++S.EdgesRetired;
      continue;
    }
    if (Ed.VersionSeen != E.SuccessVersion) {
      // Stale read. A reader positioned after the change that has not run
      // this sweep still gets its turn in the current sweep (the naive
      // DFS would reach it after the update); anything else waits for the
      // next sweep, like a naive restart.
      uint64_t Target =
          (LastRunSweep[Ed.Reader] == CurSweep || Ed.Reader <= E.Idx)
              ? CurSweep + 1
              : CurSweep;
      enqueue(Ed.Reader, Target);
      // The re-run re-reads and re-records; drop the consumed edge.
      Vec[I] = Vec.back();
      Vec.pop_back();
      ++S.EdgesRetired;
      continue;
    }
    ++I;
  }
}

WorklistScheduler::Status WorklistScheduler::run(ETEntry &Root,
                                                 int MaxSweeps) {
  assert(Root.Idx >= 0 && "root entry must live in the table");
  Machine.setDependencySink(this);
  CurSweep = 1;
  Status Out = Status::Converged;
  if (MaxSweeps < 1) {
    Out = Status::BudgetHit;
  } else {
    ensure(Table.size());
    enqueue(Root.Idx, CurSweep);
    while (!Heap.empty()) {
      auto [Sweep, Idx] = Heap.top();
      Heap.pop();
      if (!InQueue[Idx] || QueuedSweep[Idx] != Sweep)
        continue; // consumed inline or re-queued; lazy deletion
      if (Sweep > CurSweep) {
        if (Sweep > static_cast<uint64_t>(MaxSweeps)) {
          Out = Status::BudgetHit;
          break;
        }
        CurSweep = Sweep;
      }
      ++S.Runs;
      if (Machine.runActivation(Table.entryAt(static_cast<size_t>(Idx))) ==
          AbsRunStatus::Error) {
        Out = Status::Error;
        break;
      }
    }
  }
  S.Sweeps = MaxSweeps < 1 ? 0 : CurSweep; // sweeps actually executed
  Machine.setDependencySink(nullptr);
  return Out;
}
