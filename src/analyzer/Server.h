//===- analyzer/Server.h - Concurrent analysis service ----------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis service behind examples/analyze_server: the line-oriented
/// verb protocol (load / entry / batch / edit / domain / modes / dump /
/// stats / export / import) as a reusable library, generalized from one
/// synchronous REPL to N concurrent clients over a shared pool of
/// per-(module fingerprint, abstract domain) stores on a fixed worker
/// pool.
///
/// `load` is link-aware: `load main.pl lib.pl ...` compiles each operand
/// as a separate unit and links them into one program (extra operands are
/// library units, linked ahead of the first, main unit); the slot keys on
/// the *linked* module's fingerprint,
/// which equals the monolithic compile's (relocation-invariant clause
/// hashing), so split and concatenated loads share a store. `export TAG`
/// serializes the current store's summaries + replay traces into a
/// server-wide in-memory bundle registry; `import TAG` banks a bundle's
/// still-valid traces into the current store as warm-start hints —
/// across modules, domains permitting (the bundle is module-independent;
/// per-predicate code fingerprints drop stale traces on the way in, and
/// answers stay byte-identical regardless).
///
/// Determinism is inherited, not re-proven: every store answer is
/// byte-identical to a scratch analysis of that entry under the current
/// program at every thread count (analyzer/Store.h), and `edit` commands
/// are touches — the program text never changes — so a query's response
/// depends only on (module, domain, verb, report toggle), never on which
/// other clients ran what in between. That is what makes the concurrency
/// scheme below safe to gate by byte-identity against single-client
/// replay (bench/ablation_server.cpp, the CI server-hammer job):
///
///  - Per-client FIFO: each client's requests run one at a time, in
///    submission order, so a client's response stream is a deterministic
///    function of its own command stream.
///  - Writers serialize per store: a drain or edit takes the store slot's
///    exclusive lock. Queries against *different* (fingerprint, domain)
///    slots proceed concurrently.
///  - Readers ride the response cache: each slot memoizes the exact
///    response bytes of successful entry/batch requests (keyed by verb,
///    report toggle and spec text), served under a brief cache mutex
///    without touching the store at all — concurrent repeat readers never
///    contend on the slot lock.
///  - Duplicate in-flight queries coalesce: N clients asking the same
///    not-yet-cached question elect one leader to drain; the rest wait on
///    the leader's response and pay nothing. (The leader is by
///    construction an already-running worker, so followers can never
///    starve the pool.)
///
/// Memory is bounded by LRU-by-bytes eviction over stores: each slot
/// meters its store's heap (interner arenas + table pages + banked
/// journals + cached projections, AnalysisStore::bytesUsed) after every
/// writer op; when the total crosses Config::MaxStoreBytes, the
/// least-recently-touched idle slots drop their analysis state (sessions,
/// response cache) while keeping the compiled program — a later touch
/// re-warms from a cold store with identical response bytes. Long-lived
/// stores additionally compact their journal banks
/// (AnalysisStore::compactJournals).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_SERVER_H
#define AWAM_ANALYZER_SERVER_H

#include "analyzer/Session.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace awam {

class AnalysisServer {
public:
  struct Config {
    /// Driver configuration of every store the server creates (threads,
    /// speculation bounds, warm-drain threads, initial domain ignored —
    /// the domain is per client). Persistent and the worklist/interning
    /// requirements are forced on.
    AnalyzerOptions Options;
    /// Worker threads executing requests. 1 serializes everything (the
    /// reference transcript mode); the byte-identity contract holds at
    /// every count.
    int Workers = 1;
    /// LRU-by-bytes cap over the sum of all stores' bytesUsed(); 0 =
    /// unbounded. The cap is a low-water target, not a hard guarantee —
    /// a single store mid-drain can exceed it until the next writer op.
    uint64_t MaxStoreBytes = 0;
    /// Resolves a `load` operand to program source. Return false with
    /// \p Err set to reject. Null = read the operand as a file path.
    /// examples/analyze_server installs a resolver that also understands
    /// bench:<name>.
    std::function<bool(const std::string &Spec, std::string &Source,
                       std::string &Err)>
        LoadSource;
  };

  /// One request's rendered result: Out is the payload (stdout in the
  /// transport), Err the messages/prompt channel (stderr), exactly as the
  /// single-client REPL split them.
  struct Response {
    std::string Out;
    std::string Err;
    bool Quit = false;
  };

  /// Cumulative service counters (reporting; interleaving-dependent, not
  /// part of any determinism contract).
  struct Stats {
    uint64_t Requests = 0;  ///< lines processed
    uint64_t Queries = 0;   ///< entry/batch requests
    uint64_t Drains = 0;    ///< queries/edits that ran the store
    uint64_t CacheHits = 0; ///< answered from a slot's response cache
    uint64_t Coalesced = 0; ///< waited on an identical in-flight query
    uint64_t Evictions = 0; ///< stores dropped by the byte cap
    uint64_t EvictedBytes = 0;
    uint64_t Rewarms = 0; ///< sessions recreated after an eviction
    uint64_t LiveStores = 0;
    uint64_t LiveBytes = 0;
    uint64_t Bundles = 0;     ///< tags in the summary-bundle registry
    uint64_t BundleBytes = 0; ///< total serialized bundle bytes held
  };

  explicit AnalysisServer(Config C);
  AnalysisServer(const AnalysisServer &) = delete;
  AnalysisServer &operator=(const AnalysisServer &) = delete;
  ~AnalysisServer();

  /// Registers a client (its own cursor, domain, report toggle, FIFO
  /// queue) and returns its id.
  int openClient();

  /// Drops a client's session state. Queued requests still drain; their
  /// callbacks still fire.
  void closeClient(int Client);

  /// Enqueues one command line for \p Client. \p Done fires exactly once,
  /// on a worker thread, when the request completes; a client's callbacks
  /// fire in submission order.
  void submit(int Client, std::string Line,
              std::function<void(const Response &)> Done);

  /// Synchronous convenience: submit + wait. With concurrent clients this
  /// still only serializes the *calling* client.
  Response execute(int Client, std::string_view Line);

  Stats stats() const;

  /// Test hook: exclusive lock on \p Client's current store slot, so a
  /// test can hold the writer lock while racing queries against it
  /// (deterministic coalescing/serialization tests). Returns an unlocked
  /// lock when the client has no current store.
  std::unique_lock<std::shared_mutex> lockCurrentStoreForTest(int Client);

private:
  struct Pending;
  struct StoreSlot;
  struct ClientState;
  struct QueuedReq;

  void workerLoop();
  void process(ClientState &CS, const std::string &Line, Response &R);
  void doLoad(ClientState &CS, const std::string &Rest, Response &R);
  void doQuery(ClientState &CS, const std::string &Verb,
               const std::string &Rest, Response &R);
  void doEdit(ClientState &CS, const std::string &Rest, Response &R);
  /// `optimize [SPEC]`: analyzes SPEC (default: the client's last
  /// successful spec on this store) and responds with the specializer's
  /// rewrite report plus the annotated listing of the optimized module.
  /// Responses cache per slot like entry/batch (key prefix "o:").
  void doOptimize(ClientState &CS, const std::string &Rest, Response &R);
  void doDump(ClientState &CS, Response &R);
  void doStats(ClientState &CS, Response &R);
  /// `export TAG`: serializes the current store's summaries + replay
  /// traces into the server-wide bundle registry under TAG (overwriting a
  /// previous TAG).
  void doExport(ClientState &CS, const std::string &Rest, Response &R);
  /// `import TAG`: banks the registered bundle's still-valid traces into
  /// the current store as warm-start hints; stale/unresolved drop counts
  /// go to the message channel.
  void doImport(ClientState &CS, const std::string &Rest, Response &R);
  /// Compiles the (label, source) \p Units — linking when there is more
  /// than one — and selects (creating if new) the result's (fingerprint,
  /// domain) slot as \p CS's cursor, with the REPL's loaded/reusing
  /// message (and any unresolved-import warnings) on \p R.Err.
  void selectStore(ClientState &CS,
                   const std::vector<std::pair<std::string, std::string>> &Units,
                   const std::string &Label, Response &R);
  /// Recreates an evicted slot's session (caller holds the slot lock).
  void ensureSession(StoreSlot &S);
  /// Refreshes \p S's byte meter from its store (caller holds the slot
  /// lock).
  static void meterBytes(StoreSlot &S);
  /// Runs LRU-by-bytes eviction if the live total exceeds the cap.
  /// \p Keep (the slot just touched) is never a victim. Called with no
  /// locks held.
  void maybeEvict(StoreSlot *Keep);

  Config Cfg;

  /// Guards Clients, Slots, Ready and open/close state.
  mutable std::mutex GM;
  std::condition_variable WorkCV;
  bool Stopping = false;
  std::map<int, std::unique_ptr<ClientState>> Clients;
  int NextClient = 0;
  /// Slots live for the server's lifetime — eviction drops a slot's
  /// session, never the slot — so raw StoreSlot pointers held by clients
  /// and request code stay valid without per-use refcounting.
  std::map<std::pair<uint64_t, std::string>, std::unique_ptr<StoreSlot>>
      Slots;
  /// Clients with queued work and no worker on them, in arrival order
  /// (round-robin fairness between clients).
  std::deque<int> Ready;
  std::vector<std::thread> Workers;

  /// Monotone touch clock for LRU ordering.
  std::atomic<uint64_t> TouchClock{0};

  /// Summary-bundle registry (tag -> serialized bundle bytes), shared by
  /// every client and store. Bundles are plain bytes — importing
  /// re-validates against the target store's module, so a tag exported
  /// from one module can warm another.
  mutable std::mutex BundleMu;
  std::map<std::string, std::string> Bundles;

  // Service counters (see Stats).
  std::atomic<uint64_t> NRequests{0}, NQueries{0}, NDrains{0};
  std::atomic<uint64_t> NCacheHits{0}, NCoalesced{0};
  std::atomic<uint64_t> NEvictions{0}, NEvictedBytes{0}, NRewarms{0};
};

} // namespace awam

#endif // AWAM_ANALYZER_SERVER_H
