//===- analyzer/ParallelScheduler.cpp - Deterministic parallel driver -----===//

#include "analyzer/ParallelScheduler.h"

#include "analyzer/RunJournal.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace awam;

//===----------------------------------------------------------------------===//
// SpecPool
//===----------------------------------------------------------------------===//

SpecPool::SpecPool(int Threads) : NumThreads(Threads < 1 ? 1 : Threads) {
  Helpers.reserve(static_cast<size_t>(NumThreads) - 1);
  for (int Id = 1; Id < NumThreads; ++Id)
    Helpers.emplace_back([this, Id] { helperMain(Id); });
}

SpecPool::~SpecPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WakeCV.notify_all();
  for (std::thread &T : Helpers)
    T.join();
}

void SpecPool::runBatch(const std::function<void(int)> &Fn) {
  if (Helpers.empty()) {
    Fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    Job = &Fn;
    ++Generation;
    Outstanding = static_cast<int>(Helpers.size());
  }
  WakeCV.notify_all();
  Fn(0); // the caller is worker 0
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [this] { return Outstanding == 0; });
  Job = nullptr;
}

void SpecPool::helperMain(int Id) {
  uint64_t SeenGen = 0;
  for (;;) {
    const std::function<void(int)> *MyJob;
    {
      std::unique_lock<std::mutex> Lock(M);
      WakeCV.wait(Lock,
                  [&] { return Stopping || Generation != SeenGen; });
      if (Stopping)
        return;
      SeenGen = Generation;
      MyJob = Job;
    }
    (*MyJob)(Id);
    {
      std::lock_guard<std::mutex> Lock(M);
      --Outstanding;
    }
    DoneCV.notify_one();
  }
}

//===----------------------------------------------------------------------===//
// Speculation records
//===----------------------------------------------------------------------===//

/// One dependency-sink event of a speculative activation run, in the order
/// the machine produced it. Replaying the sequence of events against the
/// live master core and table *is* the commit: each kind corresponds 1:1
/// to what the sequential run would have done at that point.
struct ParallelScheduler::Event {
  enum Kind : uint8_t {
    Begin, ///< beginActivation(A); A >= BaseSize means "create, then begin"
    Read,  ///< noteRead(reader A, dep B, version Ver)
    Grow,  ///< A's summary grew to Success, version Ver
    Query, ///< shouldReexplore(A) was answered with Answer
  };
  Kind K;
  int32_t A = -1;
  int32_t B = -1;
  uint32_t Ver = 0;
  bool Answer = false;
  Pattern Success; ///< Grow only: the grown summary, materialized
  /// Grow only: the summary's id in the worker's interner. An id below the
  /// worker's shared base id space (Spec::InternBase) is a master id and
  /// commits without re-interning the pattern.
  PatternId SuccessId = kInvalidPatternId;
};

/// A completed speculation: the event log plus everything needed to decide
/// whether the sequential run at commit time would have done the same.
struct ParallelScheduler::Spec {
  int32_t RootIdx = -1;
  size_t BaseSize = 0; ///< master table size at the freeze
  std::vector<Event> Log;
  /// Base entries read (shadowed), with the summary state observed — all
  /// must be unchanged at commit time.
  std::vector<ExtensionTable::BaseTouch> Touched;
  /// Entries created, in creation order (their Idx values are BaseSize,
  /// BaseSize+1, ...).
  std::vector<std::pair<int32_t, Pattern>> Created;
  uint64_t Steps = 0;
  uint64_t Activations = 0;
  uint64_t Probes = 0;
  uint64_t PagesCopied = 0; ///< overlay pages privatized during this run
  /// The worker interner's shared base id count at speculation time: event
  /// SuccessIds below it are master ids (see Event::SuccessId).
  PatternId InternBase = 0;
  /// The sweep the speculation was scheduled for (cross-sweep speculation
  /// targets the next sweep when the current ready set is narrow).
  uint64_t TargetSweep = 0;
  bool MachineError = false;
  /// Incremental mode only: the replayable trace the worker recorded for
  /// this run, handed to the master journal if the speculation commits.
  std::shared_ptr<const RunTrace> Trace;
};

/// The worker-side dependency sink: answers the machine's scheduling
/// queries from a private clone of the frozen master core (so inline
/// re-exploration decisions match the sequential schedule exactly) and
/// records every event for validation and commit.
struct ParallelScheduler::SpecSink final : DependencySink {
  SchedulerCore Local;
  Spec *Out = nullptr;

  bool shouldReexplore(const ETEntry &E) override {
    bool Answer = Local.shouldReexplore(E.Idx);
    Event Ev;
    Ev.K = Event::Query;
    Ev.A = E.Idx;
    Ev.Answer = Answer;
    Out->Log.push_back(std::move(Ev));
    return Answer;
  }
  void beginActivation(const ETEntry &E) override {
    Local.beginActivation(E.Idx);
    Event Ev;
    Ev.K = Event::Begin;
    Ev.A = E.Idx;
    Out->Log.push_back(std::move(Ev));
  }
  void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                uint32_t VersionSeen) override {
    Local.noteRead(Reader.Idx, Dep.Idx, VersionSeen);
    Event Ev;
    Ev.K = Event::Read;
    Ev.A = Reader.Idx;
    Ev.B = Dep.Idx;
    Ev.Ver = VersionSeen;
    Out->Log.push_back(std::move(Ev));
  }
  void noteChanged(const ETEntry &E) override {
    Local.noteChanged(E.Idx, E.SuccessVersion);
    Event Ev;
    Ev.K = Event::Grow;
    Ev.A = E.Idx;
    Ev.Ver = E.SuccessVersion;
    Ev.Success = *E.Success;
    Ev.SuccessId = E.SuccessId;
    Out->Log.push_back(std::move(Ev));
  }
};

/// One speculation worker: an overlay interner sharing the master's frozen
/// id space read-only (ids below the base count are master ids and commit
/// without rematerialization), an overlay table over the frozen master, a
/// machine bound to that overlay, and the recording sink.
struct ParallelScheduler::Worker {
  std::unique_ptr<PatternInterner> Interner;
  ExtensionTable Overlay;
  AbstractMachine Machine;
  SpecSink Sink;
  /// Per-worker trace recorder (incremental mode): the worker machine
  /// records into it, speculateOne harvests one trace per run. Same module
  /// as the master, so harvested traces share the master's pid space.
  RunJournal Journal;

  Worker(const ExtensionTable &Master, const CompiledProgram &Program,
         const AbsMachineOptions &Options)
      : Interner(Master.interner()
                     ? std::make_unique<PatternInterner>(Options.DepthLimit,
                                                         Options.Dom)
                     : nullptr),
        Overlay(Master.impl(), Interner.get()),
        Machine(Program, Overlay, Options), Journal(*Program.Module) {
    if (Interner)
      Interner->attachBase(*Master.interner());
    Overlay.attachBase(Master);
  }
};

//===----------------------------------------------------------------------===//
// ParallelScheduler
//===----------------------------------------------------------------------===//

ParallelScheduler::ParallelScheduler(ExtensionTable &Table,
                                     AbstractMachine &Machine,
                                     const CompiledProgram &Program,
                                     const AbsMachineOptions &MachineOptions,
                                     SpecPool &Pool, RunJournal *Journal,
                                     Tuning Tune)
    : Table(Table), Machine(Machine), Pool(Pool), MasterJournal(Journal),
      Tune(Tune) {
  AbsMachineOptions WorkerOptions = MachineOptions;
  WorkerOptions.TraceLog = nullptr; // tracing is a sequential-only feature
  Workers.reserve(static_cast<size_t>(Pool.threads()));
  for (int I = 0; I < Pool.threads(); ++I)
    Workers.push_back(
        std::make_unique<Worker>(Table, Program, WorkerOptions));
  MaxSteps = MachineOptions.MaxSteps;
  if (this->Tune.BatchMax < 1)
    this->Tune.BatchMax = 1;
  if (this->Tune.BatchMin < 1)
    this->Tune.BatchMin = 1;
  if (this->Tune.BatchMin > this->Tune.BatchMax)
    this->Tune.BatchMin = this->Tune.BatchMax;
  CurBatch = std::min<size_t>(
      static_cast<size_t>(this->Tune.BatchMax),
      std::max<size_t>(static_cast<size_t>(this->Tune.BatchMin), 2));
  // Static direct-call adjacency (see callsDirectly): one scan of each
  // predicate's clause code for call/execute targets.
  const CodeModule &Mod = *Program.Module;
  NumPreds = Mod.numPredicates();
  StaticCalls.assign(static_cast<size_t>(NumPreds) * NumPreds, 0);
  for (int32_t P = 0; P != NumPreds; ++P)
    for (const ClauseInfo &C : Mod.predicate(P).Clauses)
      for (int32_t A = C.Entry; A != C.Entry + C.NumInstr; ++A) {
        const Instruction &I = Mod.at(A);
        if ((I.Op == Opcode::Call || I.Op == Opcode::Execute) && I.A >= 0 &&
            I.A < NumPreds)
          StaticCalls[static_cast<size_t>(P) * NumPreds + I.A] = 1;
      }
}

ParallelScheduler::~ParallelScheduler() = default;

void ParallelScheduler::speculateOne(Worker &W, int32_t RootIdx,
                                     uint64_t TargetSweep, Spec &Out) {
  if (W.Interner)
    W.Interner->resetOverlay(); // re-snapshot the master id space
  W.Overlay.resetOverlay();     // O(pages): re-share the master's pages
  W.Sink.Local = Core; // frozen-schedule clone (master is quiescent here)
  // Cross-sweep speculation: run under the sweep the entry is queued for,
  // so inline re-exploration decisions match the drain that will pop it.
  W.Sink.Local.setCurrentSweep(TargetSweep);
  W.Sink.Out = &Out;
  Out.RootIdx = RootIdx;
  Out.BaseSize = W.Overlay.baseSize();
  Out.InternBase = W.Interner ? W.Interner->baseCount() : 0;
  Out.TargetSweep = TargetSweep;

  uint64_t Steps0 = W.Machine.stepsExecuted();
  uint64_t Acts0 = W.Machine.activationsExplored();
  uint64_t Probes0 = W.Overlay.probeCount();
  uint64_t Pages0 = W.Overlay.pagesCopied();

  W.Machine.setDependencySink(&W.Sink);
  if (MasterJournal)
    W.Machine.setRunJournal(&W.Journal);
  // The root is about to be explored: privatize it (recording the touch
  // the validation checks against the live table).
  ETEntry &Root = W.Overlay.writableAt(static_cast<size_t>(RootIdx));
  AbsRunStatus RunStatus = W.Machine.runActivation(Root);
  W.Machine.setRunJournal(nullptr);
  W.Machine.setDependencySink(nullptr);
  if (MasterJournal)
    Out.Trace = W.Journal.takeLast();

  Out.Steps = W.Machine.stepsExecuted() - Steps0;
  Out.Activations = W.Machine.activationsExplored() - Acts0;
  Out.Probes = W.Overlay.probeCount() - Probes0;
  Out.PagesCopied = W.Overlay.pagesCopied() - Pages0;
  Out.MachineError = RunStatus == AbsRunStatus::Error;
  Out.Touched = W.Overlay.touchLog();
  for (size_t Pos = Out.BaseSize; Pos < W.Overlay.size(); ++Pos) {
    const ETEntry &E = W.Overlay.entryAt(Pos);
    Out.Created.emplace_back(E.PredId, E.Call);
  }
}

void ParallelScheduler::speculateBatch(const std::vector<BatchItem> &Batch) {
  ++SStats.Batches;
  SStats.Speculated += Batch.size();
  BatchSpecs.clear();
  BatchSpecs.resize(Batch.size());
  std::atomic<size_t> Next{0};
  Pool.runBatch([&](int WorkerId) {
    for (size_t I = Next.fetch_add(1); I < Batch.size();
         I = Next.fetch_add(1))
      speculateOne(*Workers[static_cast<size_t>(WorkerId)], Batch[I].Idx,
                   Batch[I].Sweep, BatchSpecs[I]);
  });
  // Overlay-cost metrics, accumulated on the master after the barrier
  // (workers never write shared counters).
  for (const Spec &S : BatchSpecs) {
    SStats.PagesCopied += S.PagesCopied;
    SStats.BaseTouches += S.Touched.size();
  }
}

void ParallelScheduler::noteCommitClean() {
  ++CleanStreak;
  if (CleanStreak >= CurBatch &&
      CurBatch < static_cast<size_t>(Tune.BatchMax)) {
    CurBatch = std::min(CurBatch * 2, static_cast<size_t>(Tune.BatchMax));
    CleanStreak = 0;
  }
}

void ParallelScheduler::noteDiscard() {
  CurBatch = std::max(CurBatch / 2, static_cast<size_t>(Tune.BatchMin));
  CleanStreak = 0;
}

bool ParallelScheduler::validate(const Spec &S) const {
  // A speculation that errored is re-run live so the error surfaces with
  // sequential-identical state and accounting.
  if (S.MachineError)
    return false;
  // Creations claim the Idx range [BaseSize, BaseSize + Created); if the
  // live table has grown past the freeze point those indices are taken.
  if (!S.Created.empty() && Table.size() != S.BaseSize)
    return false;
  // Every base summary the run observed must be untouched.
  for (const ExtensionTable::BaseTouch &T : S.Touched) {
    const ETEntry &E = Table.entryAt(static_cast<size_t>(T.Idx));
    if (E.SuccessVersion != T.SuccessVersion ||
        E.EverExplored != T.EverExplored)
      return false;
  }
  // Replay the schedule interactions against a clone of the *live* core:
  // every inline re-exploration decision the speculation took must be the
  // decision the sequential run would take now. (Queue state can drift
  // without any summary changing — e.g. an earlier commit consumed a
  // pending run this speculation also consumed inline.)
  bool AnyQuery = false;
  for (const Event &Ev : S.Log)
    if (Ev.K == Event::Query) {
      AnyQuery = true;
      break;
    }
  if (!AnyQuery)
    return true;
  SchedulerCore Clone = Core;
  Clone.statsMut() = {}; // scratch replay; keep real stats unperturbed
  for (const Event &Ev : S.Log) {
    switch (Ev.K) {
    case Event::Begin:
      Clone.beginActivation(Ev.A);
      break;
    case Event::Read:
      Clone.noteRead(Ev.A, Ev.B, Ev.Ver);
      break;
    case Event::Grow:
      Clone.noteChanged(Ev.A, Ev.Ver);
      break;
    case Event::Query:
      if (Clone.shouldReexplore(Ev.A) != Ev.Answer)
        return false;
      break;
    }
  }
  return true;
}

void ParallelScheduler::commit(Spec &S) {
  PatternInterner *Interner = Table.interner();
  for (Event &Ev : S.Log) {
    switch (Ev.K) {
    case Event::Begin: {
      ETEntry *E;
      if (Ev.A >= static_cast<int32_t>(S.BaseSize)) {
        // Creation replay: validated to land at exactly the speculated Idx.
        auto &[PredId, Call] =
            S.Created[static_cast<size_t>(Ev.A) - S.BaseSize];
        bool Created = false;
        E = Interner ? &Table.findOrCreateByPattern(PredId, Call, Created)
                     : &Table.findOrCreate(PredId, Call, Created);
        assert(Created && E->Idx == Ev.A &&
               "validated creation must be fresh and in sequence");
        Core.ensure(Table.size());
      } else {
        E = &Table.entryAt(static_cast<size_t>(Ev.A));
      }
      Core.beginActivation(E->Idx);
      E->EverExplored = true;
      break;
    }
    case Event::Read:
      Core.noteRead(Ev.A, Ev.B, Ev.Ver);
      break;
    case Event::Grow: {
      ETEntry &E = Table.entryAt(static_cast<size_t>(Ev.A));
      E.Success = std::move(Ev.Success);
      // A SuccessId below the worker's shared base id space is a master
      // id already — the common case once the master interner has seen
      // the analysis's patterns — and commits without re-interning.
      if (Interner)
        E.SuccessId = Ev.SuccessId != kInvalidPatternId &&
                              Ev.SuccessId < S.InternBase
                          ? Ev.SuccessId
                          : Interner->intern(*E.Success);
      Table.noteSuccessChanged(E);
      assert(E.SuccessVersion == Ev.Ver &&
             "committed version bump must match the speculated one");
      Core.noteChanged(E.Idx, E.SuccessVersion);
      break;
    }
    case Event::Query:
      break;
    }
  }
  // Counters reflect committed work only, so they are thread-count
  // invariant (identical to the sequential run).
  Machine.charge(S.Steps, S.Activations);
  Table.chargeProbes(S.Probes);
  // Committed runs are the sequential schedule; their traces land in the
  // master journal in commit order, just as a one-thread run records them.
  if (MasterJournal && S.Trace)
    MasterJournal->append(std::move(S.Trace));
}

bool ParallelScheduler::takeCached(int32_t RootIdx, Spec &Out) {
  for (size_t I = 0; I != Cache.size(); ++I)
    if (Cache[I].RootIdx == RootIdx) {
      Out = std::move(Cache[I]);
      Cache.erase(Cache.begin() + static_cast<long>(I));
      return true;
    }
  return false;
}

void ParallelScheduler::purgeDeadCache() {
  // A speculation whose root's pending run was consumed inline by a
  // committed (or live) run will never be popped; drop it so a stale
  // cache cannot block further batching.
  for (size_t I = 0; I != Cache.size();) {
    if (!Core.isQueued(Cache[I].RootIdx)) {
      Cache.erase(Cache.begin() + static_cast<long>(I));
      ++SStats.Discarded;
      noteDiscard(); // wasted speculative work: shrink the batch
      continue;
    }
    ++I;
  }
}

ParallelScheduler::Status ParallelScheduler::run(ETEntry &Root,
                                                 int MaxSweeps) {
  assert(Root.Idx >= 0 && "root entry must live in the table");
  Machine.setDependencySink(this);
  Core.setCurrentSweep(1);
  Status Out = Status::Converged;
  if (MaxSweeps < 1) {
    Out = Status::BudgetHit;
  } else {
    Core.ensure(Table.size());
    Core.enqueue(Root.Idx, Core.currentSweep());
    while (std::optional<SchedulerCore::QNode> N = Core.popLive()) {
      auto [Sweep, Idx] = *N;
      if (Sweep > Core.currentSweep()) {
        if (Sweep > static_cast<uint64_t>(MaxSweeps)) {
          Out = Status::BudgetHit;
          break;
        }
        Core.setCurrentSweep(Sweep);
      }

      bool Committed = false;
      Spec Cached;
      if (takeCached(Idx, Cached)) {
        if (validate(Cached)) {
          ++Core.statsMut().Runs;
          commit(Cached);
          ++SStats.Committed;
          noteCommitClean();
          Committed = true;
        } else {
          ++SStats.Discarded;
          noteDiscard();
        }
      } else if (Cache.empty() && Pool.threads() > 1) {
        // No usable speculation in flight: freeze here and fan out up to
        // CurBatch ready entries, headed by the popped entry itself
        // (whose speculation runs against exactly the state it will
        // commit into, so each batch is guaranteed to make progress).
        // The batch is filled from the current sweep's ready set first;
        // when that set is narrower than the adaptive size, it extends
        // into the next sweep's — those runs are validated at their pop
        // like any other, the sweep drift merely lowers their odds.
        std::vector<BatchItem> Batch;
        Batch.push_back({Idx, Core.currentSweep()});
        // A candidate related to an earlier batch member is doomed in
        // either direction: a candidate that *reads* a member validates
        // against a stale summary when the member's commit grows, and a
        // member that *calls* the candidate consumes the candidate's
        // pending run inline when it commits (purging the cached
        // speculation unconsumed). Recorded dependency edges catch the
        // observed read pairs; the static call graph catches first-time
        // inline consumption, which records no edge until it happens.
        // Keep related entries out of one batch instead of paying for
        // speculations that discard — only independent entries
        // parallelize cleanly.
        auto ReadsBatch = [&](int32_t R) {
          int32_t RP = Table.entryAt(static_cast<size_t>(R)).PredId;
          for (const BatchItem &M : Batch) {
            if (Core.hasReaderEdge(M.Idx, R) || Core.hasReaderEdge(R, M.Idx))
              return true;
            int32_t MP = Table.entryAt(static_cast<size_t>(M.Idx)).PredId;
            if (callsDirectly(MP, RP) || callsDirectly(RP, MP))
              return true;
          }
          return false;
        };
        // Ask for CurBatch candidates: the popped entry may still be in
        // the ready set (popLive leaves InQueue) and is filtered below.
        for (int32_t R : Core.collectReady(Core.currentSweep(), CurBatch))
          if (R != Idx && Batch.size() < CurBatch && !ReadsBatch(R))
            Batch.push_back({R, Core.currentSweep()});
        if (Batch.size() < CurBatch) {
          for (int32_t R : Core.collectReady(Core.currentSweep() + 1,
                                             CurBatch - Batch.size())) {
            if (Batch.size() >= CurBatch || ReadsBatch(R))
              continue;
            Batch.push_back({R, Core.currentSweep() + 1});
            ++SStats.CrossSweep;
          }
        }
        if (Batch.size() == 1) {
          // Nothing to overlap with: skip the speculation machinery
          // (overlay reset, event log, validation replay) entirely and
          // run the one activation live.
          ++SStats.Bypassed;
        } else {
          speculateBatch(Batch);
          if (validate(BatchSpecs[0])) {
            ++Core.statsMut().Runs;
            commit(BatchSpecs[0]);
            ++SStats.Committed;
            noteCommitClean();
            Committed = true;
          } else {
            ++SStats.Discarded; // machine error: re-run live to surface it
            noteDiscard();
          }
          for (size_t I = 1; I < BatchSpecs.size(); ++I)
            Cache.push_back(std::move(BatchSpecs[I]));
          BatchSpecs.clear();
        }
      }

      if (!Committed) {
        ++Core.statsMut().Runs;
        if (Machine.runActivation(Table.entryAt(static_cast<size_t>(
                Idx))) == AbsRunStatus::Error) {
          Out = Status::Error;
          ErrMsg = Machine.errorMessage();
          break;
        }
      } else if (Machine.stepsExecuted() > MaxSteps) {
        // A committed speculation pushed the charged total past the
        // budget; the sequential run would have errored inside this very
        // activation.
        Out = Status::Error;
        ErrMsg = "abstract instruction budget exceeded";
        break;
      }
      purgeDeadCache();
    }
  }
  Core.statsMut().Sweeps = MaxSweeps < 1 ? 0 : Core.currentSweep();
  SStats.Discarded += Cache.size(); // orphaned in-flight speculations
  Cache.clear();
  Machine.setDependencySink(nullptr);
  return Out;
}
