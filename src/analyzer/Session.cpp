//===- analyzer/Session.cpp - Driver wiring -------------------------------===//

#include "analyzer/Session.h"

#include "analyzer/Domain.h"

#include <algorithm>

using namespace awam;

AnalysisSession::AnalysisSession(const CompiledProgram &Program,
                                 AnalyzerOptions Options)
    : Program(&Program), Options(Options) {}

AnalysisSession::AnalysisSession(std::unique_ptr<Backend> Custom,
                                 AnalyzerOptions Options)
    : Custom(std::move(Custom)), Options(Options) {}

AnalysisSession::AnalysisSession(AnalysisSession &&) noexcept = default;
AnalysisSession &
AnalysisSession::operator=(AnalysisSession &&) noexcept = default;
AnalysisSession::~AnalysisSession() = default;

const WorklistScheduler::Stats *AnalysisSession::schedulerStats() const {
  if (IncSched)
    return &IncSched->stats();
  if (ParSched)
    return &ParSched->stats();
  return Scheduler ? &Scheduler->stats() : nullptr;
}

const ParallelScheduler::SpecStats *AnalysisSession::specStats() const {
  return ParSched ? &ParSched->specStats() : nullptr;
}

const IncrementalScheduler::ReanalyzeStats *
AnalysisSession::reanalyzeStats() const {
  return IncSched ? &IncSched->reanalyzeStats() : nullptr;
}

const SchedulerCore *AnalysisSession::lastCore() const {
  if (IncSched)
    return &IncSched->core();
  if (ParSched)
    return &ParSched->core();
  return Scheduler ? &Scheduler->core() : nullptr;
}

Result<AnalysisResult> AnalysisSession::analyze(std::string_view EntrySpec) {
  Result<std::pair<std::string, Pattern>> Parsed = parseEntrySpec(EntrySpec);
  if (!Parsed)
    return Parsed.diag();
  return analyze(Parsed->first, Parsed->second);
}

Result<AnalysisResult> AnalysisSession::analyze(std::string_view Name,
                                                const Pattern &Entry) {
  if (Custom)
    return Custom->analyze(Name, Entry);
  if (Options.Persistent) {
    Result<AnalysisStore *> S = ensureStore();
    if (!S)
      return S.diag();
    return (*S)->query(Name, Entry);
  }
  return analyzeCompiled(Name, Entry);
}

Result<AnalysisStore *> AnalysisSession::ensureStore() {
  if (PStore)
    return PStore.get();
  if (!Program)
    return makeError("persistent sessions require the compiled backend");
  if (Options.Driver != DriverKind::Worklist || !Options.UseInterning)
    return makeError(
        "persistent sessions require the worklist driver with interning");
  Result<const Domain *> D = resolveDomain(Options.DomainName);
  if (!D)
    return D.diag();
  Dom = *D;
  PStore = std::make_unique<AnalysisStore>(*Program, Options);
  return PStore.get();
}

Result<std::string> AnalysisSession::exportSummaries() {
  Result<AnalysisStore *> S = ensureStore();
  if (!S)
    return S.diag();
  return (*S)->exportSummaries();
}

Result<AnalysisStore::ImportStats>
AnalysisSession::importSummaries(std::string_view Bytes) {
  Result<AnalysisStore *> S = ensureStore();
  if (!S)
    return S.diag();
  return (*S)->importSummaries(Bytes);
}

Result<std::vector<AnalysisResult>>
AnalysisSession::analyzeBatch(const std::vector<std::string> &EntrySpecs) {
  // Validate the whole batch before running anything: parse every spec and
  // resolve every entry predicate, so a typo at position N cannot waste
  // the N-1 analyses before it (or leave a store mid-list).
  std::vector<std::pair<std::string, Pattern>> Parsed;
  Parsed.reserve(EntrySpecs.size());
  for (const std::string &Spec : EntrySpecs) {
    Result<std::pair<std::string, Pattern>> P = parseEntrySpec(Spec);
    if (!P)
      return P.diag();
    if (Program) {
      const CodeModule &M = *Program->Module;
      Symbol Sym = M.symbols().lookup(P->first);
      int Arity = static_cast<int>(P->second.Roots.size());
      if (Sym == ~0u || M.findPredicate(Sym, Arity) < 0)
        return makeError(
            undefinedPredicateMessage(M, "entry", P->first, Arity));
    }
    Parsed.push_back(std::move(*P));
  }
  // One warm store across the batch whenever the configuration can back
  // one; otherwise (custom backend, naive driver, no interning) each spec
  // runs as an independent scratch analysis.
  AnalysisStore *Batch = nullptr;
  if (Program && Options.Driver == DriverKind::Worklist &&
      Options.UseInterning) {
    Result<AnalysisStore *> S = ensureStore();
    if (!S)
      return S.diag();
    Batch = *S;
  }
  std::vector<AnalysisResult> Out;
  Out.reserve(Parsed.size());
  for (const auto &[Name, Entry] : Parsed) {
    Result<AnalysisResult> R =
        Batch ? Batch->query(Name, Entry) : analyze(Name, Entry);
    if (!R)
      return R.diag();
    Out.push_back(std::move(*R));
  }
  return Out;
}

void AnalysisSession::setBudgets(int MaxIterations, uint64_t MaxSteps) {
  Options.MaxIterations = MaxIterations;
  Options.MaxSteps = MaxSteps;
  if (PStore)
    PStore->setBudgets(MaxIterations, MaxSteps);
}

Result<AnalysisResult>
AnalysisSession::analyzeCompiled(std::string_view Name,
                                 const Pattern &Entry) {
  CodeModule &M = *Program->Module;
  Symbol Sym = M.symbols().lookup(Name);
  int Arity = static_cast<int>(Entry.Roots.size());
  int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Arity);
  if (Pid < 0)
    return makeError(undefinedPredicateMessage(M, "entry", Name, Arity));
  LastEntryName.assign(Name);
  LastEntry = Entry;
  HaveEntry = true;

  Result<const Domain *> D = resolveDomain(Options.DomainName);
  if (!D)
    return D.diag();
  if (*D != &defaultDomain() && !Options.UseInterning)
    return makeError("abstract domain '" + Options.DomainName +
                     "' requires the interned fast path (UseInterning)");
  Dom = *D;

  // Fresh run state: each analyze() computes its fixpoint from scratch.
  Interner.reset();
  Scheduler.reset();
  ParSched.reset();
  IncSched.reset();
  if (Options.UseInterning)
    Interner = std::make_unique<PatternInterner>(Options.DepthLimit, Dom);
  Table = std::make_unique<ExtensionTable>(Options.TableImpl,
                                           Interner.get());
  AbsMachineOptions MachineOptions;
  MachineOptions.DepthLimit = Options.DepthLimit;
  MachineOptions.MaxSteps = Options.MaxSteps;
  MachineOptions.Dom = Dom;
  Machine = std::make_unique<AbstractMachine>(*Program, *Table,
                                              MachineOptions);
  // Trace recording is a worklist-protocol feature (runActivation); the
  // naive driver's runIteration never journals.
  Journal.reset();
  if (Options.Incremental && Options.Driver == DriverKind::Worklist)
    Journal = std::make_unique<RunJournal>(M);
  Machine->setRunJournal(Journal.get());

  AnalysisResult R;
  if (Options.Driver == DriverKind::Naive) {
    for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
      AbsRunStatus Status = Machine->runIteration(Pid, Entry);
      ++R.Iterations;
      if (Status == AbsRunStatus::Error)
        return makeError("abstract machine error: " +
                         Machine->errorMessage());
      if (!Machine->changedSinceLastRun()) {
        R.Converged = true;
        break;
      }
    }
  } else {
    // Worklist driver: create the entry activation, then let the
    // scheduler drain the dependency-directed queue.
    bool Created = false;
    ETEntry &Root =
        Interner ? Table->findOrCreate(
                       Pid, Interner->internNormalized(Entry), Created)
                 : Table->findOrCreate(Pid, Entry, Created);
    WorklistScheduler::Status Status;
    if (Options.NumThreads > 1) {
      // Parallel driver: speculative execution with sequential-order
      // commits — the table (and every committed-work counter) is
      // byte-identical to the one-thread run.
      if (!Pool || Pool->threads() != Options.NumThreads)
        Pool = std::make_unique<SpecPool>(Options.NumThreads);
      ParSched = std::make_unique<ParallelScheduler>(
          *Table, *Machine, *Program, MachineOptions, *Pool, Journal.get(),
          ParallelScheduler::Tuning(Options.SpecBatchMin,
                                    Options.SpecBatchMax));
      Status = ParSched->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " +
                         ParSched->errorMessage());
    } else {
      Scheduler = std::make_unique<WorklistScheduler>(*Table, *Machine);
      Status = Scheduler->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " +
                         Machine->errorMessage());
    }
    const WorklistScheduler::Stats &SS = *schedulerStats();
    R.Converged = Status == WorklistScheduler::Status::Converged;
    R.Iterations = static_cast<int>(SS.Sweeps);
    R.Counters.SchedulerRuns = SS.Runs;
    R.Counters.DepEdges = SS.EdgesRecorded;
    if (ParSched) {
      const ParallelScheduler::SpecStats &PS = ParSched->specStats();
      R.Counters.SpecBatches = PS.Batches;
      R.Counters.SpecRuns = PS.Speculated;
      R.Counters.SpecCommitted = PS.Committed;
      R.Counters.SpecDiscarded = PS.Discarded;
      R.Counters.SpecBypassed = PS.Bypassed;
      R.Counters.SpecPagesCopied = PS.PagesCopied;
      R.Counters.SpecBaseTouches = PS.BaseTouches;
    }
  }

  finishResult(R);
  return R;
}

//===----------------------------------------------------------------------===//
// Incremental re-analysis
//===----------------------------------------------------------------------===//
// The clause-level program diff (instrEquiv / diffPrograms) lives in
// Incremental.cpp — the AnalysisStore's cone invalidation shares it.

uint64_t AnalysisSession::coneSize(
    const std::vector<PredSig> &Edited) const {
  const SchedulerCore *Core = lastCore();
  if (!Core || !Table || !Program)
    return 0;
  const CodeModule &M = *Program->Module;
  std::vector<char> IsEdited(static_cast<size_t>(M.numPredicates()), 0);
  for (const PredSig &Sig : Edited) {
    Symbol Sym = M.symbols().lookup(Sig.Name);
    int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Sig.Arity);
    if (Pid >= 0)
      IsEdited[Pid] = 1;
  }
  std::vector<int32_t> Seeds;
  for (const ETEntry &E : Table->entries())
    if (static_cast<size_t>(E.PredId) < IsEdited.size() &&
        IsEdited[E.PredId])
      Seeds.push_back(E.Idx);
  std::vector<char> Mark = Core->reverseClosure(Seeds);
  return static_cast<uint64_t>(
      std::count(Mark.begin(), Mark.end(), char(1)));
}

/// Edit signatures are user input (--edit flags, server edit verbs): one
/// naming a predicate the program never mentions — or an existing name at
/// the wrong arity — is a typo, and silently analyzing with an empty edit
/// cone would just echo the old result. Returns the near-miss diagnostic,
/// or the empty string when every signature resolves. (The recompiled-
/// program overload reanalyze(CompiledProgram) stays lenient on purpose:
/// its diff legitimately names removed predicates.)
static std::string validateEditSigs(const CompiledProgram *Program,
                                    const std::vector<PredSig> &Edited) {
  if (!Program)
    return {};
  const CodeModule &M = *Program->Module;
  for (const PredSig &Sig : Edited) {
    Symbol Sym = M.symbols().lookup(Sig.Name);
    if (Sym == ~0u || M.findPredicate(Sym, Sig.Arity) < 0)
      return undefinedPredicateMessage(M, "edited", Sig.Name, Sig.Arity);
  }
  return {};
}

Result<AnalysisResult>
AnalysisSession::reanalyze(const std::vector<PredSig> &EditedPreds) {
  if (Custom)
    return makeError("reanalyze requires the compiled backend");
  if (std::string Err = validateEditSigs(
          Program ? Program : (PStore ? &PStore->program() : nullptr),
          EditedPreds);
      !Err.empty())
    return makeError(std::move(Err));
  if (PStore)
    return PStore->reanalyze(EditedPreds);
  if (!HaveEntry)
    return makeError("reanalyze requires a prior analyze()");
  uint64_t Cone = coneSize(EditedPreds);
  return reanalyzeCompiled(EditedPreds, Cone);
}

Result<AnalysisResult>
AnalysisSession::reanalyze(const std::vector<PredSig> &EditedPreds,
                           std::string_view EntrySpec) {
  // Route through the store even on a fresh session (the server edits
  // right after re-warming an evicted store): an empty store invalidates
  // nothing and answers the spec cold, which is the correct degenerate
  // case.
  Result<AnalysisStore *> S = ensureStore();
  if (!S)
    return S.diag();
  if (std::string Err = validateEditSigs(&(*S)->program(), EditedPreds);
      !Err.empty())
    return makeError(std::move(Err));
  Result<std::pair<std::string, Pattern>> Parsed = parseEntrySpec(EntrySpec);
  if (!Parsed)
    return Parsed.diag();
  return (*S)->reanalyze(EditedPreds, Parsed->first, Parsed->second);
}

Result<AnalysisResult>
AnalysisSession::reanalyze(const CompiledProgram &Edited) {
  if (Custom)
    return makeError("reanalyze requires the compiled backend");
  if (PStore) {
    Result<AnalysisResult> R = PStore->reanalyze(Edited);
    Program = &PStore->program();
    return R;
  }
  if (!HaveEntry)
    return makeError("reanalyze requires a prior analyze()");
  // Diff and cone are computed against the outgoing program/core, before
  // the edited program is installed.
  std::vector<PredSig> Edits = diffPrograms(*Program, Edited);
  uint64_t Cone = coneSize(Edits);
  Program = &Edited;
  return reanalyzeCompiled(Edits, Cone);
}

Result<AnalysisResult>
AnalysisSession::reanalyzeCompiled(const std::vector<PredSig> &Edited,
                                   uint64_t ConeEntries) {
  // Nothing recorded to replay (Incremental off, naive driver, or the
  // previous run predates the feature): a fresh analysis of the current
  // program is trivially byte-identical to itself.
  if (!Journal || Options.Driver != DriverKind::Worklist)
    return analyzeCompiled(LastEntryName, LastEntry);

  CodeModule &M = *Program->Module;
  Symbol Sym = M.symbols().lookup(LastEntryName);
  int Arity = static_cast<int>(LastEntry.Roots.size());
  int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Arity);
  if (Pid < 0)
    return makeError(
        undefinedPredicateMessage(M, "entry", LastEntryName, Arity));

  // The outgoing run's journal feeds this drain; a fresh journal records
  // it in turn (replays carry their traces over) for the next link of the
  // chain.
  std::unique_ptr<RunJournal> PrevJournal = std::move(Journal);
  uint64_t PrevEntries = Table ? Table->size() : 0;

  // Fresh run state, exactly as analyzeCompiled builds it: replay
  // validation reconstructs everything the edit left valid.
  Result<const Domain *> D = resolveDomain(Options.DomainName);
  if (!D)
    return D.diag();
  if (*D != &defaultDomain() && !Options.UseInterning)
    return makeError("abstract domain '" + Options.DomainName +
                     "' requires the interned fast path (UseInterning)");
  Dom = *D;
  Interner.reset();
  Scheduler.reset();
  ParSched.reset();
  IncSched.reset();
  if (Options.UseInterning)
    Interner = std::make_unique<PatternInterner>(Options.DepthLimit, Dom);
  Table = std::make_unique<ExtensionTable>(Options.TableImpl,
                                           Interner.get());
  AbsMachineOptions MachineOptions;
  MachineOptions.DepthLimit = Options.DepthLimit;
  MachineOptions.MaxSteps = Options.MaxSteps;
  MachineOptions.Dom = Dom;
  Machine = std::make_unique<AbstractMachine>(*Program, *Table,
                                              MachineOptions);
  Journal = std::make_unique<RunJournal>(M);
  Machine->setRunJournal(Journal.get());

  bool Created = false;
  ETEntry &Root =
      Interner ? Table->findOrCreate(Pid, Interner->internNormalized(LastEntry),
                                     Created)
               : Table->findOrCreate(Pid, LastEntry, Created);
  // The re-drain's output is thread-invariant (replay/execute decisions
  // are revalidated at each pop; see Incremental.h); with more than one
  // warm-drain thread, replay validation itself is fanned out on the
  // session's pool.
  int WarmThreads =
      Options.WarmThreads > 0 ? Options.WarmThreads : Options.NumThreads;
  if (WarmThreads > 1 && (!Pool || Pool->threads() != WarmThreads))
    Pool = std::make_unique<SpecPool>(WarmThreads);
  IncSched = std::make_unique<IncrementalScheduler>(
      *Table, *Machine, M, *PrevJournal, Edited, Journal.get(),
      Options.MaxSteps, WarmThreads > 1 ? Pool.get() : nullptr);
  IncSched->reanalyzeStats().PrevEntries = PrevEntries;
  IncSched->reanalyzeStats().ConeEntries = ConeEntries;
  WorklistScheduler::Status Status = IncSched->run(Root, Options.MaxIterations);
  if (Status == WorklistScheduler::Status::Error)
    return makeError("abstract machine error: " + Machine->errorMessage());

  AnalysisResult R;
  const WorklistScheduler::Stats &SS = IncSched->stats();
  R.Converged = Status == WorklistScheduler::Status::Converged;
  R.Iterations = static_cast<int>(SS.Sweeps);
  R.Counters.SchedulerRuns = SS.Runs;
  R.Counters.DepEdges = SS.EdgesRecorded;
  finishResult(R);
  return R;
}

void AnalysisSession::finishResult(AnalysisResult &R) {
  R.Instructions = Machine->stepsExecuted();
  R.TableProbes = Table->probeCount();
  R.Counters.Instructions = R.Instructions;
  R.Counters.ETProbes = R.TableProbes;
  R.Counters.ActivationRuns = Machine->activationsExplored();
  if (Interner) {
    const InternerStats &IS = Interner->stats();
    R.Counters.InternHits = IS.InternHits;
    R.Counters.InternMisses = IS.InternMisses;
    R.Counters.LubCacheHits = IS.LubCacheHits;
    R.Counters.LubCacheMisses = IS.LubCacheMisses;
    R.Counters.LeqCacheHits = IS.LeqCacheHits;
    R.Counters.LeqCacheMisses = IS.LeqCacheMisses;
    R.Counters.DistinctPatterns = Interner->size();
  }
  const CodeModule &M = *Program->Module;
  for (const ETEntry &E : Table->entries())
    R.Items.push_back(
        {E.PredId, M.predicateLabel(E.PredId), E.Call, E.Success});
  R.Dom = Dom;
}
