//===- analyzer/Session.cpp - Driver wiring -------------------------------===//

#include "analyzer/Session.h"

using namespace awam;

AnalysisSession::AnalysisSession(const CompiledProgram &Program,
                                 AnalyzerOptions Options)
    : Program(&Program), Options(Options) {}

AnalysisSession::AnalysisSession(std::unique_ptr<Backend> Custom,
                                 AnalyzerOptions Options)
    : Custom(std::move(Custom)), Options(Options) {}

AnalysisSession::AnalysisSession(AnalysisSession &&) noexcept = default;
AnalysisSession &
AnalysisSession::operator=(AnalysisSession &&) noexcept = default;
AnalysisSession::~AnalysisSession() = default;

const WorklistScheduler::Stats *AnalysisSession::schedulerStats() const {
  if (ParSched)
    return &ParSched->stats();
  return Scheduler ? &Scheduler->stats() : nullptr;
}

const ParallelScheduler::SpecStats *AnalysisSession::specStats() const {
  return ParSched ? &ParSched->specStats() : nullptr;
}

Result<AnalysisResult> AnalysisSession::analyze(std::string_view EntrySpec) {
  Result<std::pair<std::string, Pattern>> Parsed = parseEntrySpec(EntrySpec);
  if (!Parsed)
    return Parsed.diag();
  return analyze(Parsed->first, Parsed->second);
}

Result<AnalysisResult> AnalysisSession::analyze(std::string_view Name,
                                                const Pattern &Entry) {
  if (Custom)
    return Custom->analyze(Name, Entry);
  return analyzeCompiled(Name, Entry);
}

Result<AnalysisResult>
AnalysisSession::analyzeCompiled(std::string_view Name,
                                 const Pattern &Entry) {
  CodeModule &M = *Program->Module;
  Symbol Sym = M.symbols().lookup(Name);
  int Arity = static_cast<int>(Entry.Roots.size());
  int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Arity);
  if (Pid < 0)
    return makeError("entry predicate " + std::string(Name) + "/" +
                     std::to_string(Arity) + " is not defined");

  // Fresh run state: each analyze() computes its fixpoint from scratch.
  Interner.reset();
  Scheduler.reset();
  ParSched.reset();
  if (Options.UseInterning)
    Interner = std::make_unique<PatternInterner>(Options.DepthLimit);
  Table = std::make_unique<ExtensionTable>(Options.TableImpl,
                                           Interner.get());
  AbsMachineOptions MachineOptions;
  MachineOptions.DepthLimit = Options.DepthLimit;
  MachineOptions.MaxSteps = Options.MaxSteps;
  Machine = std::make_unique<AbstractMachine>(*Program, *Table,
                                              MachineOptions);

  AnalysisResult R;
  if (Options.Driver == DriverKind::Naive) {
    for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
      AbsRunStatus Status = Machine->runIteration(Pid, Entry);
      ++R.Iterations;
      if (Status == AbsRunStatus::Error)
        return makeError("abstract machine error: " +
                         Machine->errorMessage());
      if (!Machine->changedSinceLastRun()) {
        R.Converged = true;
        break;
      }
    }
  } else {
    // Worklist driver: create the entry activation, then let the
    // scheduler drain the dependency-directed queue.
    bool Created = false;
    ETEntry &Root =
        Interner ? Table->findOrCreate(
                       Pid, Interner->internNormalized(Entry), Created)
                 : Table->findOrCreate(Pid, Entry, Created);
    WorklistScheduler::Status Status;
    if (Options.NumThreads > 1) {
      // Parallel driver: speculative execution with sequential-order
      // commits — the table (and every committed-work counter) is
      // byte-identical to the one-thread run.
      if (!Pool || Pool->threads() != Options.NumThreads)
        Pool = std::make_unique<SpecPool>(Options.NumThreads);
      ParSched = std::make_unique<ParallelScheduler>(
          *Table, *Machine, *Program, MachineOptions, *Pool);
      Status = ParSched->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " +
                         ParSched->errorMessage());
    } else {
      Scheduler = std::make_unique<WorklistScheduler>(*Table, *Machine);
      Status = Scheduler->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " +
                         Machine->errorMessage());
    }
    const WorklistScheduler::Stats &SS = *schedulerStats();
    R.Converged = Status == WorklistScheduler::Status::Converged;
    R.Iterations = static_cast<int>(SS.Sweeps);
    R.Counters.SchedulerRuns = SS.Runs;
    R.Counters.DepEdges = SS.EdgesRecorded;
    if (ParSched) {
      const ParallelScheduler::SpecStats &PS = ParSched->specStats();
      R.Counters.SpecBatches = PS.Batches;
      R.Counters.SpecRuns = PS.Speculated;
      R.Counters.SpecCommitted = PS.Committed;
      R.Counters.SpecDiscarded = PS.Discarded;
    }
  }

  R.Instructions = Machine->stepsExecuted();
  R.TableProbes = Table->probeCount();
  R.Counters.Instructions = R.Instructions;
  R.Counters.ETProbes = R.TableProbes;
  R.Counters.ActivationRuns = Machine->activationsExplored();
  if (Interner) {
    const InternerStats &IS = Interner->stats();
    R.Counters.InternHits = IS.InternHits;
    R.Counters.InternMisses = IS.InternMisses;
    R.Counters.LubCacheHits = IS.LubCacheHits;
    R.Counters.LubCacheMisses = IS.LubCacheMisses;
    R.Counters.LeqCacheHits = IS.LeqCacheHits;
    R.Counters.LeqCacheMisses = IS.LeqCacheMisses;
    R.Counters.DistinctPatterns = Interner->size();
  }
  for (const ETEntry &E : Table->entries())
    R.Items.push_back(
        {E.PredId, M.predicateLabel(E.PredId), E.Call, E.Success});
  return R;
}
