//===- analyzer/Session.cpp - Driver wiring -------------------------------===//

#include "analyzer/Session.h"

#include <algorithm>

using namespace awam;

AnalysisSession::AnalysisSession(const CompiledProgram &Program,
                                 AnalyzerOptions Options)
    : Program(&Program), Options(Options) {}

AnalysisSession::AnalysisSession(std::unique_ptr<Backend> Custom,
                                 AnalyzerOptions Options)
    : Custom(std::move(Custom)), Options(Options) {}

AnalysisSession::AnalysisSession(AnalysisSession &&) noexcept = default;
AnalysisSession &
AnalysisSession::operator=(AnalysisSession &&) noexcept = default;
AnalysisSession::~AnalysisSession() = default;

const WorklistScheduler::Stats *AnalysisSession::schedulerStats() const {
  if (IncSched)
    return &IncSched->stats();
  if (ParSched)
    return &ParSched->stats();
  return Scheduler ? &Scheduler->stats() : nullptr;
}

const ParallelScheduler::SpecStats *AnalysisSession::specStats() const {
  return ParSched ? &ParSched->specStats() : nullptr;
}

const IncrementalScheduler::ReanalyzeStats *
AnalysisSession::reanalyzeStats() const {
  return IncSched ? &IncSched->reanalyzeStats() : nullptr;
}

const SchedulerCore *AnalysisSession::lastCore() const {
  if (IncSched)
    return &IncSched->core();
  if (ParSched)
    return &ParSched->core();
  return Scheduler ? &Scheduler->core() : nullptr;
}

Result<AnalysisResult> AnalysisSession::analyze(std::string_view EntrySpec) {
  Result<std::pair<std::string, Pattern>> Parsed = parseEntrySpec(EntrySpec);
  if (!Parsed)
    return Parsed.diag();
  return analyze(Parsed->first, Parsed->second);
}

Result<AnalysisResult> AnalysisSession::analyze(std::string_view Name,
                                                const Pattern &Entry) {
  if (Custom)
    return Custom->analyze(Name, Entry);
  return analyzeCompiled(Name, Entry);
}

Result<AnalysisResult>
AnalysisSession::analyzeCompiled(std::string_view Name,
                                 const Pattern &Entry) {
  CodeModule &M = *Program->Module;
  Symbol Sym = M.symbols().lookup(Name);
  int Arity = static_cast<int>(Entry.Roots.size());
  int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Arity);
  if (Pid < 0)
    return makeError("entry predicate " + std::string(Name) + "/" +
                     std::to_string(Arity) + " is not defined");
  LastEntryName.assign(Name);
  LastEntry = Entry;
  HaveEntry = true;

  // Fresh run state: each analyze() computes its fixpoint from scratch.
  Interner.reset();
  Scheduler.reset();
  ParSched.reset();
  IncSched.reset();
  if (Options.UseInterning)
    Interner = std::make_unique<PatternInterner>(Options.DepthLimit);
  Table = std::make_unique<ExtensionTable>(Options.TableImpl,
                                           Interner.get());
  AbsMachineOptions MachineOptions;
  MachineOptions.DepthLimit = Options.DepthLimit;
  MachineOptions.MaxSteps = Options.MaxSteps;
  Machine = std::make_unique<AbstractMachine>(*Program, *Table,
                                              MachineOptions);
  // Trace recording is a worklist-protocol feature (runActivation); the
  // naive driver's runIteration never journals.
  Journal.reset();
  if (Options.Incremental && Options.Driver == DriverKind::Worklist)
    Journal = std::make_unique<RunJournal>(M);
  Machine->setRunJournal(Journal.get());

  AnalysisResult R;
  if (Options.Driver == DriverKind::Naive) {
    for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
      AbsRunStatus Status = Machine->runIteration(Pid, Entry);
      ++R.Iterations;
      if (Status == AbsRunStatus::Error)
        return makeError("abstract machine error: " +
                         Machine->errorMessage());
      if (!Machine->changedSinceLastRun()) {
        R.Converged = true;
        break;
      }
    }
  } else {
    // Worklist driver: create the entry activation, then let the
    // scheduler drain the dependency-directed queue.
    bool Created = false;
    ETEntry &Root =
        Interner ? Table->findOrCreate(
                       Pid, Interner->internNormalized(Entry), Created)
                 : Table->findOrCreate(Pid, Entry, Created);
    WorklistScheduler::Status Status;
    if (Options.NumThreads > 1) {
      // Parallel driver: speculative execution with sequential-order
      // commits — the table (and every committed-work counter) is
      // byte-identical to the one-thread run.
      if (!Pool || Pool->threads() != Options.NumThreads)
        Pool = std::make_unique<SpecPool>(Options.NumThreads);
      ParSched = std::make_unique<ParallelScheduler>(
          *Table, *Machine, *Program, MachineOptions, *Pool, Journal.get());
      Status = ParSched->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " +
                         ParSched->errorMessage());
    } else {
      Scheduler = std::make_unique<WorklistScheduler>(*Table, *Machine);
      Status = Scheduler->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " +
                         Machine->errorMessage());
    }
    const WorklistScheduler::Stats &SS = *schedulerStats();
    R.Converged = Status == WorklistScheduler::Status::Converged;
    R.Iterations = static_cast<int>(SS.Sweeps);
    R.Counters.SchedulerRuns = SS.Runs;
    R.Counters.DepEdges = SS.EdgesRecorded;
    if (ParSched) {
      const ParallelScheduler::SpecStats &PS = ParSched->specStats();
      R.Counters.SpecBatches = PS.Batches;
      R.Counters.SpecRuns = PS.Speculated;
      R.Counters.SpecCommitted = PS.Committed;
      R.Counters.SpecDiscarded = PS.Discarded;
    }
  }

  finishResult(R);
  return R;
}

//===----------------------------------------------------------------------===//
// Incremental re-analysis
//===----------------------------------------------------------------------===//

namespace {

/// Do two instructions perform the same operation, with pool/table indices
/// resolved to their meaning? Both modules must share one SymbolTable (the
/// callers guarantee it), so Symbol values compare directly. Address-typed
/// operands (try/retry/trust chains, switches, jumps) are conservatively
/// unequal — clause code blocks never contain them, so this only fires if
/// that invariant ever changes, and it fails safe (pred counted edited).
bool instrEquiv(const CodeModule &MA, const Instruction &A,
                const CodeModule &MB, const Instruction &B) {
  if (A.Op != B.Op)
    return false;
  switch (A.Op) {
  case Opcode::GetConst:
  case Opcode::PutConst:
  case Opcode::UnifyConst:
    return A.B == B.B && MA.constAt(A.A) == MB.constAt(B.A);
  case Opcode::GetStructure:
  case Opcode::PutStructure:
    return A.B == B.B && MA.functorAt(A.A) == MB.functorAt(B.A);
  case Opcode::Call:
  case Opcode::Execute: {
    const PredicateInfo &PA = MA.predicate(A.A);
    const PredicateInfo &PB = MB.predicate(B.A);
    return PA.Name == PB.Name && PA.Arity == PB.Arity;
  }
  case Opcode::Try:
  case Opcode::Retry:
  case Opcode::Trust:
  case Opcode::Jump:
  case Opcode::SwitchOnTerm:
  case Opcode::SwitchOnConstant:
  case Opcode::SwitchOnStructure:
    return false;
  default:
    return A.A == B.A && A.B == B.B;
  }
}

/// The predicates whose *clause code* differs between \p Old and \p New,
/// by name/arity: changed bodies, changed clause counts, additions, and
/// removals. With distinct symbol tables the comparison is meaningless
/// (Symbols and hence patterns are incomparable), so every predicate of
/// both programs is reported — reanalyze then (correctly) replays nothing.
std::vector<PredSig> diffPrograms(const CompiledProgram &Old,
                                  const CompiledProgram &New) {
  const CodeModule &MO = *Old.Module;
  const CodeModule &MN = *New.Module;
  std::vector<PredSig> Edited;
  auto sigOf = [](const CodeModule &M, const PredicateInfo &P) {
    return PredSig{std::string(M.symbols().name(P.Name)), P.Arity};
  };
  if (&MO.symbols() != &MN.symbols()) {
    for (int32_t I = 0; I != MO.numPredicates(); ++I)
      Edited.push_back(sigOf(MO, MO.predicate(I)));
    for (int32_t I = 0; I != MN.numPredicates(); ++I)
      Edited.push_back(sigOf(MN, MN.predicate(I)));
    return Edited;
  }
  for (int32_t I = 0; I != MN.numPredicates(); ++I) {
    const PredicateInfo &PN = MN.predicate(I);
    int32_t OldId = MO.findPredicate(PN.Name, PN.Arity);
    if (OldId < 0) {
      if (!PN.Clauses.empty()) // newly defined
        Edited.push_back(sigOf(MN, PN));
      continue;
    }
    const PredicateInfo &PO = MO.predicate(OldId);
    bool Same = PO.Clauses.size() == PN.Clauses.size();
    for (size_t C = 0; Same && C != PN.Clauses.size(); ++C) {
      const ClauseInfo &CO = PO.Clauses[C];
      const ClauseInfo &CN = PN.Clauses[C];
      Same = CO.NumInstr == CN.NumInstr;
      for (int32_t K = 0; Same && K != CN.NumInstr; ++K)
        Same = instrEquiv(MO, MO.at(CO.Entry + K), MN, MN.at(CN.Entry + K));
    }
    if (!Same)
      Edited.push_back(sigOf(MN, PN));
  }
  for (int32_t I = 0; I != MO.numPredicates(); ++I) {
    const PredicateInfo &PO = MO.predicate(I);
    if (PO.Clauses.empty())
      continue;
    int32_t NewId = MN.findPredicate(PO.Name, PO.Arity);
    if (NewId < 0 || MN.predicate(NewId).Clauses.empty()) // removed
      Edited.push_back(sigOf(MO, PO));
  }
  return Edited;
}

} // namespace

uint64_t AnalysisSession::coneSize(
    const std::vector<PredSig> &Edited) const {
  const SchedulerCore *Core = lastCore();
  if (!Core || !Table || !Program)
    return 0;
  const CodeModule &M = *Program->Module;
  std::vector<char> IsEdited(static_cast<size_t>(M.numPredicates()), 0);
  for (const PredSig &Sig : Edited) {
    Symbol Sym = M.symbols().lookup(Sig.Name);
    int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Sig.Arity);
    if (Pid >= 0)
      IsEdited[Pid] = 1;
  }
  std::vector<int32_t> Seeds;
  for (const ETEntry &E : Table->entries())
    if (static_cast<size_t>(E.PredId) < IsEdited.size() &&
        IsEdited[E.PredId])
      Seeds.push_back(E.Idx);
  std::vector<char> Mark = Core->reverseClosure(Seeds);
  return static_cast<uint64_t>(
      std::count(Mark.begin(), Mark.end(), char(1)));
}

Result<AnalysisResult>
AnalysisSession::reanalyze(const std::vector<PredSig> &EditedPreds) {
  if (Custom)
    return makeError("reanalyze requires the compiled backend");
  if (!HaveEntry)
    return makeError("reanalyze requires a prior analyze()");
  uint64_t Cone = coneSize(EditedPreds);
  return reanalyzeCompiled(EditedPreds, Cone);
}

Result<AnalysisResult>
AnalysisSession::reanalyze(const CompiledProgram &Edited) {
  if (Custom)
    return makeError("reanalyze requires the compiled backend");
  if (!HaveEntry)
    return makeError("reanalyze requires a prior analyze()");
  // Diff and cone are computed against the outgoing program/core, before
  // the edited program is installed.
  std::vector<PredSig> Edits = diffPrograms(*Program, Edited);
  uint64_t Cone = coneSize(Edits);
  Program = &Edited;
  return reanalyzeCompiled(Edits, Cone);
}

Result<AnalysisResult>
AnalysisSession::reanalyzeCompiled(const std::vector<PredSig> &Edited,
                                   uint64_t ConeEntries) {
  // Nothing recorded to replay (Incremental off, naive driver, or the
  // previous run predates the feature): a fresh analysis of the current
  // program is trivially byte-identical to itself.
  if (!Journal || Options.Driver != DriverKind::Worklist)
    return analyzeCompiled(LastEntryName, LastEntry);

  CodeModule &M = *Program->Module;
  Symbol Sym = M.symbols().lookup(LastEntryName);
  int Arity = static_cast<int>(LastEntry.Roots.size());
  int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Arity);
  if (Pid < 0)
    return makeError("entry predicate " + LastEntryName + "/" +
                     std::to_string(Arity) + " is not defined");

  // The outgoing run's journal feeds this drain; a fresh journal records
  // it in turn (replays carry their traces over) for the next link of the
  // chain.
  std::unique_ptr<RunJournal> PrevJournal = std::move(Journal);
  uint64_t PrevEntries = Table ? Table->size() : 0;

  // Fresh run state, exactly as analyzeCompiled builds it: replay
  // validation reconstructs everything the edit left valid.
  Interner.reset();
  Scheduler.reset();
  ParSched.reset();
  IncSched.reset();
  if (Options.UseInterning)
    Interner = std::make_unique<PatternInterner>(Options.DepthLimit);
  Table = std::make_unique<ExtensionTable>(Options.TableImpl,
                                           Interner.get());
  AbsMachineOptions MachineOptions;
  MachineOptions.DepthLimit = Options.DepthLimit;
  MachineOptions.MaxSteps = Options.MaxSteps;
  Machine = std::make_unique<AbstractMachine>(*Program, *Table,
                                              MachineOptions);
  Journal = std::make_unique<RunJournal>(M);
  Machine->setRunJournal(Journal.get());

  bool Created = false;
  ETEntry &Root =
      Interner ? Table->findOrCreate(Pid, Interner->internNormalized(LastEntry),
                                     Created)
               : Table->findOrCreate(Pid, LastEntry, Created);
  // The re-drain itself is sequential at any NumThreads: its output is
  // thread-invariant by the same argument that makes the parallel driver
  // byte-identical, and replay leaves little to overlap.
  IncSched = std::make_unique<IncrementalScheduler>(
      *Table, *Machine, M, *PrevJournal, Edited, Journal.get(),
      Options.MaxSteps);
  IncSched->reanalyzeStats().PrevEntries = PrevEntries;
  IncSched->reanalyzeStats().ConeEntries = ConeEntries;
  WorklistScheduler::Status Status = IncSched->run(Root, Options.MaxIterations);
  if (Status == WorklistScheduler::Status::Error)
    return makeError("abstract machine error: " + Machine->errorMessage());

  AnalysisResult R;
  const WorklistScheduler::Stats &SS = IncSched->stats();
  R.Converged = Status == WorklistScheduler::Status::Converged;
  R.Iterations = static_cast<int>(SS.Sweeps);
  R.Counters.SchedulerRuns = SS.Runs;
  R.Counters.DepEdges = SS.EdgesRecorded;
  finishResult(R);
  return R;
}

void AnalysisSession::finishResult(AnalysisResult &R) {
  R.Instructions = Machine->stepsExecuted();
  R.TableProbes = Table->probeCount();
  R.Counters.Instructions = R.Instructions;
  R.Counters.ETProbes = R.TableProbes;
  R.Counters.ActivationRuns = Machine->activationsExplored();
  if (Interner) {
    const InternerStats &IS = Interner->stats();
    R.Counters.InternHits = IS.InternHits;
    R.Counters.InternMisses = IS.InternMisses;
    R.Counters.LubCacheHits = IS.LubCacheHits;
    R.Counters.LubCacheMisses = IS.LubCacheMisses;
    R.Counters.LeqCacheHits = IS.LeqCacheHits;
    R.Counters.LeqCacheMisses = IS.LeqCacheMisses;
    R.Counters.DistinctPatterns = Interner->size();
  }
  const CodeModule &M = *Program->Module;
  for (const ETEntry &E : Table->entries())
    R.Items.push_back(
        {E.PredId, M.predicateLabel(E.PredId), E.Call, E.Success});
}
