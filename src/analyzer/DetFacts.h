//===- analyzer/DetFacts.h - Determinism fact computation -------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism machinery behind the "det" domain, exposed as a
/// reusable computation: per table item (predicate x calling pattern), a
/// determinism class plus the set of clauses the first-argument test
/// admits. The det domain's formatFacts renders these; the specializer
/// adapter (analyzer/Specialize.h) consumes them to license rewrites.
///
/// Classes over-approximate (see DetDomain.cpp's header comment): "det"
/// and "semidet" are real guarantees, "nondet" means no exclusion was
/// proved.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_DETFACTS_H
#define AWAM_ANALYZER_DETFACTS_H

#include "analyzer/Analyzer.h"

#include <vector>

namespace awam {

/// Determinism classification of one table item. Values order from best
/// to least knowledge so the body fixpoint can take maxima.
enum class DetItemClass : uint8_t {
  Det = 0,     ///< exactly one solution, success guaranteed
  Semidet = 1, ///< at most one solution, may fail
  Nondet = 2,  ///< choice points can survive
  Fails = 3,   ///< the table proves the call never succeeds
};

/// Lower-case name as the det domain prints it ("det", "semidet", ...).
const char *detItemClassName(DetItemClass C);

/// Determinism facts of one table item.
struct DetItemFacts {
  DetItemClass Class = DetItemClass::Det;
  /// Indices (into the predicate's Clauses vector) of the clauses the
  /// item's first-argument shape can reach. When the shape test ruled out
  /// every clause but the item succeeded, this falls back to all clauses.
  std::vector<size_t> Matching;
};

/// Computes determinism facts for every item of \p R, parallel to
/// R.Items. Returns an empty vector when \p Program has no module or the
/// table is empty.
std::vector<DetItemFacts> computeDetFacts(const AnalysisResult &R,
                                          const CompiledProgram &Program);

} // namespace awam

#endif // AWAM_ANALYZER_DETFACTS_H
