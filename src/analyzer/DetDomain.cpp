//===- analyzer/DetDomain.cpp - Determinism analysis ----------------------===//
//
// The determinism / mutual-exclusion domain ("det"): analyses run over the
// default mode/type/aliasing encoding unchanged (every lattice and transfer
// hook is the base Domain's), and the derived facts are computed *after*
// the fixpoint, from the extension table plus the compiled clause code —
// per table item (predicate x calling pattern), a classification
//
//   det      exactly one clause can match, its head cannot fail, and its
//            body is det — at most one solution, and success is guaranteed
//            given the summary says it succeeds
//   semidet  at most one solution (clauses mutually exclusive on the first
//            argument), but the item can fail
//   nondet   several clauses may match: choice points can survive
//   fails    the table proves the call never succeeds
//
// The computation itself lives in analyzer/DetFacts.cpp (the specializer
// adapter shares it); this file is only the domain registration and the
// fact renderer.
//
//===----------------------------------------------------------------------===//

#include "analyzer/DetFacts.h"
#include "analyzer/Domain.h"
#include "compiler/ProgramCompiler.h"

using namespace awam;

namespace {

class DetDomain final : public Domain {
public:
  std::string_view name() const override { return "det"; }
  std::string_view description() const override {
    return "determinism facts (det/semidet/nondet) over the default domain";
  }

  std::string formatFacts(const AnalysisResult &R,
                          const CompiledProgram &Program) const override {
    std::vector<DetItemFacts> Facts = computeDetFacts(R, Program);
    if (Facts.empty())
      return "";
    const SymbolTable &Syms = Program.Module->symbols();
    std::string Out = "determinism facts:\n";
    for (size_t I = 0; I != Facts.size(); ++I)
      Out += "  " + R.Items[I].PredLabel + " " + R.Items[I].Call.str(Syms) +
             ": " + detItemClassName(Facts[I].Class) + "\n";
    return Out;
  }
};

} // namespace

const Domain &awam::detDomain() {
  static const DetDomain D;
  return D;
}
