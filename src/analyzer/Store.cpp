//===- analyzer/Store.cpp - Persistent multi-root analysis store ----------===//

#include "analyzer/Store.h"

#include "analyzer/AbstractMachine.h"
#include "analyzer/Domain.h"

#include <algorithm>
#include <cassert>

using namespace awam;

AnalysisStore::AnalysisStore(const CompiledProgram &Program,
                             AnalyzerOptions Options)
    : Program(&Program), Options(Options) {
  // The store's reuse machinery — interned multi-root table, journal
  // replay, dependency cone — is defined in worklist-over-interner terms.
  // AnalysisSession refuses other configurations with a descriptive error;
  // normalize here so a directly constructed store is well-formed too.
  this->Options.Driver = DriverKind::Worklist;
  this->Options.UseInterning = true;
  Dom = findDomain(this->Options.DomainName);
  if (!Dom)
    Dom = &defaultDomain();
  resetState();
}

AnalysisStore::~AnalysisStore() = default;

void AnalysisStore::resetState() {
  Interner = std::make_unique<PatternInterner>(Options.DepthLimit, Dom);
  Table = std::make_unique<ExtensionTable>(Options.TableImpl,
                                           Interner.get());
  Core = SchedulerCore();
  EdgeSeen.clear();
  Roots.clear();
  Imported.reset();
  St.ImportedTraces = 0;
}

size_t AnalysisStore::numRoots() const {
  size_t N = 0;
  for (const RootInfo &RI : Roots)
    if (RI.Valid)
      ++N;
  return N;
}

int AnalysisStore::findRootSlot(std::string_view Name,
                                PatternId CallId) const {
  // Linear scan: CallId is a stable identity here because the interner is
  // append-only and shared by every query of this store.
  for (size_t I = 0; I != Roots.size(); ++I)
    if (Roots[I].CallId == CallId && Roots[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

const AnalysisResult *AnalysisStore::projection(std::string_view Name,
                                                const Pattern &Entry) {
  PatternId CallId = Interner->internNormalized(Entry);
  int Slot = findRootSlot(Name, CallId);
  return Slot >= 0 && Roots[Slot].Valid ? &Roots[Slot].Cached : nullptr;
}

Result<AnalysisResult> AnalysisStore::query(std::string_view EntrySpec) {
  Result<std::pair<std::string, Pattern>> Parsed = parseEntrySpec(EntrySpec);
  if (!Parsed)
    return Parsed.diag();
  return query(Parsed->first, Parsed->second);
}

Result<AnalysisResult> AnalysisStore::query(std::string_view Name,
                                            const Pattern &Entry) {
  const CodeModule &M = *Program->Module;
  Symbol Sym = M.symbols().lookup(Name);
  int Arity = static_cast<int>(Entry.Roots.size());
  int32_t Pid = Sym == ~0u ? -1 : M.findPredicate(Sym, Arity);
  if (Pid < 0)
    return makeError(undefinedPredicateMessage(M, "entry", Name, Arity));
  ++St.Queries;
  LastName.assign(Name);
  LastEntry = Entry;
  HaveLast = true;

  PatternId CallId = Interner->internNormalized(Entry);
  if (int Slot = findRootSlot(Name, CallId);
      Slot >= 0 && Roots[Slot].Valid) {
    ++St.CacheHits;
    return Roots[Slot].Cached;
  }

  // Build-aside drain: a fresh per-query table and machine, sharing only
  // the store's (append-only) interner. Nothing below writes store state
  // until the merge, so a failing query — machine error, budget hit —
  // leaves the store exactly as it was.
  ExtensionTable QTable(Options.TableImpl, Interner.get());
  AbsMachineOptions MachineOptions;
  MachineOptions.DepthLimit = Options.DepthLimit;
  MachineOptions.MaxSteps = Options.MaxSteps;
  MachineOptions.Dom = Dom;
  AbstractMachine Machine(*Program, QTable, MachineOptions);
  auto OutJournal = std::make_unique<RunJournal>(M);
  Machine.setRunJournal(OutJournal.get());
  // The shared interner's counters keep growing across queries; snapshot
  // so the result reports this query's own activity.
  InternerStats Before = Interner->stats();

  bool Created = false;
  ETEntry &Root = QTable.findOrCreate(Pid, CallId, Created);

  // Pool every valid root's banked journal as the replay source. The drain
  // validates each trace against the live query table before applying it,
  // so banked runs act as pre-verified memo hits wherever they still hold
  // and fall back to execution wherever they don't — which is what makes
  // the warm result byte-identical to a scratch run of this entry. Roots
  // share replayed traces by handle, so the pool dedupes by trace address
  // (and skips error traces, which never validate) — the second handle to
  // a trace could only re-validate what the first already applied.
  RunJournal PrevRuns(M);
  std::unordered_set<const RunTrace *> Pooled;
  for (const RootInfo &RI : Roots)
    if (RI.Valid && RI.Journal)
      for (const std::shared_ptr<const RunTrace> &T : RI.Journal->runs())
        if (!T->Error && Pooled.insert(T.get()).second)
          PrevRuns.append(T);
  // Imported bundle traces join the pool after the store's own: they are
  // just more pre-verified candidates for the drain to validate, so a
  // fresh store that imported a library's bundle runs its first query warm.
  if (Imported)
    for (const std::shared_ptr<const RunTrace> &T : Imported->runs())
      if (!T->Error && Pooled.insert(T.get()).second)
        PrevRuns.append(T);

  AnalysisResult R;
  WorklistScheduler::Status Status;
  const SchedulerCore *QCore = nullptr;
  std::unique_ptr<IncrementalScheduler> Inc;
  std::unique_ptr<WorklistScheduler> Seq;
  std::unique_ptr<ParallelScheduler> Par;
  if (!PrevRuns.runs().empty()) {
    ++St.WarmQueries;
    // The warm drain's output is thread-invariant (replay decisions are
    // revalidated at each pop; see Incremental.h); with more than one
    // warm-drain thread, replay validation fans out on the store's pool.
    int WarmThreads =
        Options.WarmThreads > 0 ? Options.WarmThreads : Options.NumThreads;
    if (WarmThreads > 1 && (!Pool || Pool->threads() != WarmThreads))
      Pool = std::make_unique<SpecPool>(WarmThreads);
    Inc = std::make_unique<IncrementalScheduler>(
        QTable, Machine, M, PrevRuns, std::vector<PredSig>{},
        OutJournal.get(), Options.MaxSteps,
        WarmThreads > 1 ? Pool.get() : nullptr);
    Inc->reanalyzeStats().PrevEntries = Table->size();
    Status = Inc->run(Root, Options.MaxIterations);
    if (Status == WorklistScheduler::Status::Error)
      return makeError("abstract machine error: " + Machine.errorMessage());
    QCore = &Inc->core();
    const IncrementalScheduler::ReanalyzeStats &RS = Inc->reanalyzeStats();
    St.ReplayedRuns += RS.ReplayedRuns;
    St.ExecutedRuns += RS.ExecutedRuns;
    St.ReplayedActivations += RS.ReplayedActivations;
    St.ExecutedActivations += RS.ExecutedActivations;
    St.WarmReplayBatches += RS.ReplayBatches;
    St.WarmSpecReplays += RS.SpecReplays;
    St.WarmSpecCommitted += RS.SpecCommitted;
    St.WarmSpecDiscarded += RS.SpecDiscarded;
    St.WarmCriticalUnits += RS.CriticalUnits;
  } else {
    ++St.ColdQueries;
    if (Options.NumThreads > 1) {
      if (!Pool || Pool->threads() != Options.NumThreads)
        Pool = std::make_unique<SpecPool>(Options.NumThreads);
      Par = std::make_unique<ParallelScheduler>(
          QTable, Machine, *Program, MachineOptions, *Pool,
          OutJournal.get(),
          ParallelScheduler::Tuning(Options.SpecBatchMin,
                                    Options.SpecBatchMax));
      Status = Par->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " + Par->errorMessage());
      QCore = &Par->core();
    } else {
      Seq = std::make_unique<WorklistScheduler>(QTable, Machine);
      Status = Seq->run(Root, Options.MaxIterations);
      if (Status == WorklistScheduler::Status::Error)
        return makeError("abstract machine error: " +
                         Machine.errorMessage());
      QCore = &Seq->core();
    }
  }

  const WorklistScheduler::Stats &SS =
      Inc ? Inc->stats() : (Par ? Par->stats() : Seq->stats());
  R.Converged = Status == WorklistScheduler::Status::Converged;
  R.Iterations = static_cast<int>(SS.Sweeps);
  R.Counters.SchedulerRuns = SS.Runs;
  R.Counters.DepEdges = SS.EdgesRecorded;
  if (Par) {
    const ParallelScheduler::SpecStats &PS = Par->specStats();
    R.Counters.SpecBatches = PS.Batches;
    R.Counters.SpecRuns = PS.Speculated;
    R.Counters.SpecCommitted = PS.Committed;
    R.Counters.SpecDiscarded = PS.Discarded;
  }
  R.Instructions = Machine.stepsExecuted();
  R.TableProbes = QTable.probeCount();
  R.Counters.Instructions = R.Instructions;
  R.Counters.ETProbes = R.TableProbes;
  R.Counters.ActivationRuns = Machine.activationsExplored();
  const InternerStats &After = Interner->stats();
  R.Counters.InternHits = After.InternHits - Before.InternHits;
  R.Counters.InternMisses = After.InternMisses - Before.InternMisses;
  R.Counters.LubCacheHits = After.LubCacheHits - Before.LubCacheHits;
  R.Counters.LubCacheMisses = After.LubCacheMisses - Before.LubCacheMisses;
  R.Counters.LeqCacheHits = After.LeqCacheHits - Before.LeqCacheHits;
  R.Counters.LeqCacheMisses = After.LeqCacheMisses - Before.LeqCacheMisses;
  R.Counters.DistinctPatterns = Interner->size();
  for (const ETEntry &E : QTable.entries())
    R.Items.push_back(
        {E.PredId, M.predicateLabel(E.PredId), E.Call, E.Success});
  R.Dom = Dom;

  // Only a converged fixpoint merges: a budget-hit table is a sound
  // partial answer for *this* query but not a reusable memo.
  if (R.Converged) {
    mergeQuery(Name, Pid, CallId, QTable, *QCore, std::move(OutJournal), R);
    // Bank hygiene: a warm drain re-banks every replayed trace as a shared
    // handle, so a long query chain accumulates one handle per (root,
    // trace) pair while the distinct traces stay near-constant. Compact
    // once the duplication factor crosses kCompactionFactor — past that
    // point most of the bank is re-validation of already-applied traces.
    constexpr size_t kCompactionMinHandles = 64;
    constexpr size_t kCompactionFactor = 2;
    size_t Handles = 0;
    std::unordered_set<const RunTrace *> Distinct;
    for (const RootInfo &RI : Roots)
      if (RI.Valid && RI.Journal)
        for (const std::shared_ptr<const RunTrace> &T : RI.Journal->runs()) {
          ++Handles;
          Distinct.insert(T.get());
        }
    if (Handles > kCompactionMinHandles &&
        Handles > kCompactionFactor * Distinct.size())
      compactJournals();
  }
  return R;
}

uint64_t AnalysisStore::bytesUsed() const {
  uint64_t B = Interner->bytesUsed() + Table->bytesUsed();
  std::unordered_set<const RunTrace *> Seen;
  for (const RootInfo &RI : Roots) {
    B += sizeof(RootInfo) + RI.Name.capacity() + patternHeapBytes(RI.Call) +
         RI.EntryIdxs.capacity() * sizeof(int32_t);
    B += RI.Cached.Items.capacity() * sizeof(AnalysisResult::Item);
    for (const AnalysisResult::Item &It : RI.Cached.Items)
      B += It.PredLabel.capacity() + patternHeapBytes(It.Call) +
           (It.Success ? patternHeapBytes(*It.Success) : 0);
    if (RI.Journal)
      B += RI.Journal->bytesUsed(Seen);
  }
  if (Imported)
    B += Imported->bytesUsed(Seen);
  return B;
}

uint64_t AnalysisStore::compactJournals() {
  const CodeModule &M = *Program->Module;
  uint64_t Dropped = 0;
  std::unordered_set<const RunTrace *> Kept;
  for (RootInfo &RI : Roots) {
    if (!RI.Valid || !RI.Journal)
      continue;
    auto NewJ = std::make_unique<RunJournal>(M);
    for (const std::shared_ptr<const RunTrace> &T : RI.Journal->runs()) {
      if (!T->Error && Kept.insert(T.get()).second)
        NewJ->append(T);
      else
        ++Dropped;
    }
    RI.Journal = std::move(NewJ);
  }
  ++St.Compactions;
  St.CompactedTraces += Dropped;
  return Dropped;
}

SummaryBundle AnalysisStore::exportBundle() const {
  const CodeModule &M = *Program->Module;
  SummaryBundle B;
  B.DomainName = std::string(Dom->name());
  B.DepthLimit = Options.DepthLimit;
  B.ModuleFingerprint = M.fingerprint();

  // Summary pairs: every table entry some valid root reached.
  for (const ETEntry &E : Table->entries()) {
    bool Live = false;
    for (int32_t R : E.Roots)
      if (Roots[static_cast<size_t>(R)].Valid) {
        Live = true;
        break;
      }
    if (!Live)
      continue;
    const PredicateInfo &P = M.predicate(E.PredId);
    SummaryBundle::Summary S;
    S.Sig = {std::string(M.symbols().name(P.Name)), P.Arity};
    S.Call = E.Call;
    S.Success = E.Success;
    B.Summaries.push_back(std::move(S));
  }

  // Traces: the same pooled dedup query() replays from (error traces
  // never validate, so they don't ship). Re-exporting a store that itself
  // imported includes the surviving foreign traces — bundles compose.
  std::unordered_set<const RunTrace *> Pooled;
  std::unordered_map<int32_t, PredSig> Sigs;
  auto Harvest = [&](const RunJournal &J) {
    for (const std::shared_ptr<const RunTrace> &T : J.runs())
      if (!T->Error && Pooled.insert(T.get()).second)
        B.Traces.push_back(T);
    for (const auto &[Pid, Sig] : J.sigs())
      Sigs.emplace(Pid, Sig);
  };
  for (const RootInfo &RI : Roots)
    if (RI.Valid && RI.Journal)
      Harvest(*RI.Journal);
  if (Imported)
    Harvest(*Imported);

  // Deterministic bytes: the sig table sorts by pid. Every referenced
  // predicate gets a clause-code fingerprint — including undefined ones,
  // whose "no clauses" hash only matches another module where the call
  // also fails, which is exactly the staleness check's job.
  std::vector<int32_t> Pids;
  Pids.reserve(Sigs.size());
  for (const auto &[Pid, Sig] : Sigs)
    Pids.push_back(Pid);
  std::sort(Pids.begin(), Pids.end());
  for (int32_t Pid : Pids) {
    B.TraceSigs.emplace_back(Pid, Sigs[Pid]);
    B.PredCodes.push_back({Sigs[Pid], M.predicateFingerprint(Pid)});
  }
  return B;
}

std::string AnalysisStore::exportSummaries() const {
  return exportBundle().serialize(Program->Module->symbols());
}

Result<AnalysisStore::ImportStats>
AnalysisStore::importBundle(const SummaryBundle &B) {
  const CodeModule &M = *Program->Module;
  if (B.DomainName != Dom->name())
    return makeError("summary bundle: domain mismatch (bundle '" +
                     B.DomainName + "', store '" +
                     std::string(Dom->name()) + "')");
  if (B.DepthLimit != Options.DepthLimit)
    return makeError("summary bundle: depth-limit mismatch (bundle " +
                     std::to_string(B.DepthLimit) + ", store " +
                     std::to_string(Options.DepthLimit) + ")");

  ImportStats IS;
  IS.BundleTraces = B.Traces.size();
  IS.Summaries = B.Summaries.size();

  // Resolve the bundle's pid space against this module and precompute the
  // staleness verdict per pid. A missing fingerprint entry counts as
  // stale — the guard must be positive evidence of unchanged code.
  int32_t MaxPid = -1;
  for (const auto &[Pid, Sig] : B.TraceSigs)
    MaxPid = std::max(MaxPid, Pid);
  std::vector<int32_t> PidMap(static_cast<size_t>(MaxPid + 1), -1);
  std::vector<char> Stale(static_cast<size_t>(MaxPid + 1), 1);
  std::map<std::pair<std::string, int32_t>, uint64_t> Fps;
  for (const SummaryBundle::PredCode &PC : B.PredCodes)
    Fps[{PC.Sig.Name, PC.Sig.Arity}] = PC.CodeFp;
  for (const auto &[Pid, Sig] : B.TraceSigs) {
    Symbol Sym = M.symbols().lookup(Sig.Name);
    int32_t NewPid = Sym == ~0u ? -1 : M.findPredicate(Sym, Sig.Arity);
    PidMap[static_cast<size_t>(Pid)] = NewPid;
    if (NewPid < 0)
      continue;
    auto It = Fps.find({Sig.Name, Sig.Arity});
    Stale[static_cast<size_t>(Pid)] =
        It == Fps.end() || It->second != M.predicateFingerprint(NewPid);
  }

  if (!Imported)
    Imported = std::make_unique<RunJournal>(M);
  for (const std::shared_ptr<const RunTrace> &T : B.Traces) {
    if (!T || T->Error)
      continue;
    bool Unresolved = false, IsStale = false;
    auto Check = [&](int32_t Pid) {
      if (static_cast<size_t>(Pid) >= PidMap.size() ||
          PidMap[static_cast<size_t>(Pid)] < 0)
        Unresolved = true;
      else if (Stale[static_cast<size_t>(Pid)])
        IsStale = true;
    };
    Check(T->Pred);
    for (const TraceOp &Op : T->Ops)
      if (Op.Pred >= 0)
        Check(Op.Pred);
    if (Unresolved)
      ++IS.DroppedUnresolved;
    else if (IsStale)
      ++IS.DroppedStale;
    else {
      Imported->appendRemapped(T, PidMap);
      ++IS.Banked;
    }
  }
  if (IS.Banked) {
    ++St.BundlesImported;
    St.ImportedTraces += IS.Banked;
  }
  return IS;
}

Result<AnalysisStore::ImportStats>
AnalysisStore::importSummaries(std::string_view Bytes) {
  Result<SummaryBundle> B =
      SummaryBundle::deserialize(Bytes, Program->Module->symbols());
  if (!B)
    return B.diag();
  return importBundle(*B);
}

void AnalysisStore::mergeQuery(std::string_view Name, int32_t Pid,
                               PatternId CallId,
                               const ExtensionTable &QTable,
                               const SchedulerCore &QCore,
                               std::unique_ptr<RunJournal> Journal,
                               const AnalysisResult &R) {
  int Slot = findRootSlot(Name, CallId);
  if (Slot < 0) {
    Slot = static_cast<int>(Roots.size());
    Roots.emplace_back();
  }
  RootInfo &RI = Roots[Slot];
  RI.Name.assign(Name);
  RI.Call = Pattern(Interner->pattern(CallId));
  RI.Arity = static_cast<int32_t>(RI.Call.Roots.size());
  RI.Pid = Pid;
  RI.CallId = CallId;
  RI.EntryIdxs.clear();

  // Install the query table into the store table, tagging each entry with
  // this root's ordinal. A key two queries share has one summary: both are
  // the least fixpoint at (pred, calling pattern), which depends on the
  // program alone — not on which entry goal reached it.
  std::vector<int32_t> IdxMap;
  IdxMap.reserve(QTable.size());
  for (const ETEntry &E : QTable.entries()) {
    bool Created = false;
    ETEntry &SE = Table->findOrCreate(E.PredId, E.CallId, Created);
    if (Created) {
      SE.Success = E.Success;
      SE.SuccessId = E.SuccessId;
      SE.EverExplored = E.EverExplored;
      SE.SuccessVersion = E.SuccessVersion;
      ++St.NewEntries;
    } else {
      assert(SE.Success == E.Success &&
             "converged summaries of a shared key must agree");
      ++St.SharedEntries;
    }
    if (std::find(SE.Roots.begin(), SE.Roots.end(),
                  static_cast<int32_t>(Slot)) == SE.Roots.end())
      SE.Roots.push_back(static_cast<int32_t>(Slot));
    IdxMap.push_back(SE.Idx);
    RI.EntryIdxs.push_back(SE.Idx);
  }

  // Accumulate the drain's dependency edges (remapped to store indices) —
  // reverseClosure over the union graph is the invalidation cone.
  Core.ensure(static_cast<int32_t>(Table->size()));
  for (const auto &[Dep, Reader] : QCore.edgePairs()) {
    int32_t SD = IdxMap[static_cast<size_t>(Dep)];
    int32_t SR = IdxMap[static_cast<size_t>(Reader)];
    uint64_t Key =
        (static_cast<uint64_t>(static_cast<uint32_t>(SD)) << 32) |
        static_cast<uint32_t>(SR);
    if (EdgeSeen.insert(Key).second)
      Core.noteRead(SR, SD, 0);
  }

  RI.Journal = std::move(Journal);
  RI.Cached = R;
  RI.Valid = true;
  ++St.MergedRoots;
}

Result<AnalysisResult>
AnalysisStore::reanalyze(const std::vector<PredSig> &EditedPreds) {
  if (!HaveLast)
    return makeError("reanalyze requires a prior analyze()");
  invalidate(*Program, EditedPreds);
  return query(LastName, LastEntry);
}

Result<AnalysisResult>
AnalysisStore::reanalyze(const std::vector<PredSig> &EditedPreds,
                         std::string_view Name, const Pattern &Entry) {
  invalidate(*Program, EditedPreds);
  return query(Name, Entry);
}

Result<AnalysisResult>
AnalysisStore::reanalyze(const CompiledProgram &Edited) {
  if (!HaveLast)
    return makeError("reanalyze requires a prior analyze()");
  // Diffed against the outgoing program, before the edited one installs.
  std::vector<PredSig> Edits = diffPrograms(*Program, Edited);
  invalidate(Edited, Edits);
  return query(LastName, LastEntry);
}

void AnalysisStore::invalidate(const CompiledProgram &NewP,
                               const std::vector<PredSig> &Edited) {
  ++St.Reanalyses;
  const CodeModule &MOld = *Program->Module;
  const CodeModule &MNew = *NewP.Module;

  // Distinct symbol tables: patterns of the two modules are incomparable
  // (they embed Symbols), and the interner's stored patterns could
  // structurally alias unrelated new-module terms. Nothing survives.
  if (&MOld.symbols() != &MNew.symbols()) {
    St.InvalidatedRoots += numRoots();
    St.InvalidatedEntries += Table->size();
    St.LastConeEntries = Table->size();
    resetState();
    Program = &NewP;
    return;
  }

  // The cone: reverse closure of the edited predicates' entries over the
  // accumulated dependency graph.
  std::vector<char> IsEdited(static_cast<size_t>(MOld.numPredicates()), 0);
  for (const PredSig &Sig : Edited) {
    Symbol Sym = MOld.symbols().lookup(Sig.Name);
    int32_t Pid = Sym == ~0u ? -1 : MOld.findPredicate(Sym, Sig.Arity);
    if (Pid >= 0)
      IsEdited[Pid] = 1;
  }
  std::vector<int32_t> Seeds;
  for (const ETEntry &E : Table->entries())
    if (static_cast<size_t>(E.PredId) < IsEdited.size() &&
        IsEdited[E.PredId])
      Seeds.push_back(E.Idx);
  std::vector<char> Mark = Core.reverseClosure(Seeds);
  Mark.resize(Table->size(), 0);
  St.LastConeEntries = static_cast<uint64_t>(
      std::count(Mark.begin(), Mark.end(), char(1)));

  // Ids may shift on recompilation (first-reference order); re-resolve by
  // name/arity, which the shared symbol table makes directly comparable.
  auto MapOldPid = [&](int32_t Old) {
    const PredicateInfo &P = MOld.predicate(Old);
    return MNew.findPredicate(P.Name, P.Arity);
  };

  // A root survives iff its projection misses the cone entirely (an edit
  // it could have observed implies an edge into the cone: a memo read of
  // a changed summary records an edge, and entering edited code marks the
  // entry itself) and everything it references still resolves.
  for (RootInfo &RI : Roots) {
    if (!RI.Valid)
      continue;
    bool Dead = MapOldPid(RI.Pid) < 0;
    for (int32_t Idx : RI.EntryIdxs) {
      if (Mark[static_cast<size_t>(Idx)] ||
          MapOldPid(Table->entryAt(static_cast<size_t>(Idx)).PredId) < 0) {
        Dead = true;
        break;
      }
    }
    if (Dead) {
      RI.Valid = false;
      RI.Cached = AnalysisResult{};
      RI.EntryIdxs.clear();
      RI.Journal.reset();
      ++St.InvalidatedRoots;
    }
  }

  // Rebuild the physical table and graph from the survivors. The table's
  // lookup index embeds PredId, so shifted ids force re-insertion anyway;
  // rebuilding also drops every dead entry and edge in one pass.
  uint64_t OldEntries = Table->size();
  auto NewTable =
      std::make_unique<ExtensionTable>(Options.TableImpl, Interner.get());
  SchedulerCore NewCore;
  std::unordered_set<uint64_t> NewEdgeSeen;
  std::vector<int32_t> OldToNew(Table->size(), -1);
  for (size_t RIdx = 0; RIdx != Roots.size(); ++RIdx) {
    RootInfo &RI = Roots[RIdx];
    if (!RI.Valid)
      continue;
    RI.Pid = MapOldPid(RI.Pid);
    for (int32_t &Idx : RI.EntryIdxs) {
      ETEntry &Old = Table->entryAt(static_cast<size_t>(Idx));
      int32_t NewPid = MapOldPid(Old.PredId);
      assert(NewPid >= 0 && "survivors resolve by construction");
      bool Created = false;
      ETEntry &NE = NewTable->findOrCreate(NewPid, Old.CallId, Created);
      if (Created) {
        NE.Success = Old.Success;
        NE.SuccessId = Old.SuccessId;
        NE.EverExplored = Old.EverExplored;
        NE.SuccessVersion = Old.SuccessVersion;
      }
      if (std::find(NE.Roots.begin(), NE.Roots.end(),
                    static_cast<int32_t>(RIdx)) == NE.Roots.end())
        NE.Roots.push_back(static_cast<int32_t>(RIdx));
      OldToNew[static_cast<size_t>(Idx)] = NE.Idx;
      Idx = NE.Idx;
    }
    // The cached projection's items carry PredIds for reachability joins.
    for (AnalysisResult::Item &It : RI.Cached.Items)
      It.PredId = MapOldPid(It.PredId);
    // Re-key the banked journal to the new module's ids. A surviving
    // root's drain never touched an edited predicate (it would be in the
    // cone), and removed predicates are reported as edited by
    // diffPrograms; unresolvable traces can only appear under a manual
    // edit list that understates the edit, and dropping them is safe —
    // replay validation, not the bank, is what guarantees correctness.
    if (RI.Journal) {
      auto NewJ = std::make_unique<RunJournal>(MNew);
      int32_t MaxPid = -1;
      for (const auto &[Pid, Sig] : RI.Journal->sigs())
        MaxPid = std::max(MaxPid, Pid);
      std::vector<int32_t> PidMap(static_cast<size_t>(MaxPid + 1), -1);
      for (const auto &[Pid, Sig] : RI.Journal->sigs()) {
        Symbol Sym = MNew.symbols().lookup(Sig.Name);
        PidMap[static_cast<size_t>(Pid)] =
            Sym == ~0u ? -1 : MNew.findPredicate(Sym, Sig.Arity);
      }
      for (const std::shared_ptr<const RunTrace> &T : RI.Journal->runs()) {
        bool Resolves = static_cast<size_t>(T->Pred) < PidMap.size() &&
                        PidMap[static_cast<size_t>(T->Pred)] >= 0;
        for (const TraceOp &Op : T->Ops)
          if (Resolves && Op.Pred >= 0)
            Resolves = static_cast<size_t>(Op.Pred) < PidMap.size() &&
                       PidMap[static_cast<size_t>(Op.Pred)] >= 0;
        if (Resolves)
          NewJ->appendRemapped(T, PidMap);
      }
      RI.Journal = std::move(NewJ);
    }
  }
  NewCore.ensure(static_cast<int32_t>(NewTable->size()));
  for (const auto &[Dep, Reader] : Core.edgePairs()) {
    if (static_cast<size_t>(Dep) >= OldToNew.size() ||
        static_cast<size_t>(Reader) >= OldToNew.size())
      continue;
    int32_t ND = OldToNew[static_cast<size_t>(Dep)];
    int32_t NR = OldToNew[static_cast<size_t>(Reader)];
    if (ND < 0 || NR < 0)
      continue;
    uint64_t Key =
        (static_cast<uint64_t>(static_cast<uint32_t>(ND)) << 32) |
        static_cast<uint32_t>(NR);
    if (NewEdgeSeen.insert(Key).second)
      NewCore.noteRead(NR, ND, 0);
  }

  // The imported bank is not covered by the cone argument (its traces
  // belong to no root), so filter it directly: drop every trace that
  // touches an edited predicate or no longer resolves, remap the rest.
  if (Imported) {
    auto NewJ = std::make_unique<RunJournal>(MNew);
    int32_t MaxPid = -1;
    for (const auto &[Pid, Sig] : Imported->sigs())
      MaxPid = std::max(MaxPid, Pid);
    std::vector<int32_t> PidMap(static_cast<size_t>(MaxPid + 1), -1);
    for (const auto &[Pid, Sig] : Imported->sigs()) {
      Symbol Sym = MNew.symbols().lookup(Sig.Name);
      PidMap[static_cast<size_t>(Pid)] =
          Sym == ~0u ? -1 : MNew.findPredicate(Sym, Sig.Arity);
    }
    auto Live = [&](int32_t Pid) {
      return static_cast<size_t>(Pid) < PidMap.size() &&
             PidMap[static_cast<size_t>(Pid)] >= 0 &&
             !(static_cast<size_t>(Pid) < IsEdited.size() &&
               IsEdited[static_cast<size_t>(Pid)]);
    };
    uint64_t Survivors = 0;
    for (const std::shared_ptr<const RunTrace> &T : Imported->runs()) {
      bool Ok = Live(T->Pred);
      for (const TraceOp &Op : T->Ops)
        if (Ok && Op.Pred >= 0)
          Ok = Live(Op.Pred);
      if (Ok) {
        NewJ->appendRemapped(T, PidMap);
        ++Survivors;
      }
    }
    Imported = Survivors ? std::move(NewJ) : nullptr;
    St.ImportedTraces = Survivors;
  }

  St.InvalidatedEntries += OldEntries - NewTable->size();
  Table = std::move(NewTable);
  Core = std::move(NewCore);
  EdgeSeen = std::move(NewEdgeSeen);
  Program = &NewP;
}

std::string AnalysisStore::canonicalDump(const SymbolTable &Syms) const {
  // Tag roots by identity (name + calling pattern), never by ordinal:
  // ordinals depend on query order, identities don't.
  std::vector<std::string> RootTag(Roots.size());
  for (size_t I = 0; I != Roots.size(); ++I)
    RootTag[I] = Roots[I].Name + Roots[I].Call.str(Syms);
  const CodeModule &M = *Program->Module;
  std::vector<std::string> Lines;
  for (const ETEntry &E : Table->entries()) {
    std::vector<std::string> Tags;
    for (int32_t R : E.Roots)
      if (Roots[static_cast<size_t>(R)].Valid)
        Tags.push_back(RootTag[static_cast<size_t>(R)]);
    if (Tags.empty())
      continue;
    std::sort(Tags.begin(), Tags.end());
    std::string Line = M.predicateLabel(E.PredId) + " " + E.Call.str(Syms) +
                       " -> " +
                       (E.Success ? E.Success->str(Syms) : "(fails)") +
                       "  roots:";
    for (const std::string &T : Tags)
      Line += " " + T;
    Lines.push_back(std::move(Line));
  }
  std::sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

std::string awam::formatAnalysis(AnalysisStore &Store, std::string_view Name,
                                 const Pattern &Entry,
                                 const SymbolTable &Syms) {
  const AnalysisResult *R = Store.projection(Name, Entry);
  return R ? formatAnalysis(*R, Syms) : std::string();
}
