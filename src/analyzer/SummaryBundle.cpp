//===- analyzer/SummaryBundle.cpp - Exported analysis summaries -----------===//

#include "analyzer/SummaryBundle.h"

#include <cstring>

using namespace awam;

namespace {

constexpr char kMagic[4] = {'A', 'W', 'S', 'B'};

// --- little-endian primitive writers/readers ----------------------------
// Fixed-width little-endian keeps the byte format architecture-independent
// (the CI matrix covers clang and gcc; a bundle written by either loads in
// the other).

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putI64(std::string &Out, int64_t V) {
  putU64(Out, static_cast<uint64_t>(V));
}

void putStr(std::string &Out, std::string_view S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S.data(), S.size());
}

struct Reader {
  const char *P;
  const char *End;
  bool Bad = false;

  bool need(size_t N) {
    if (static_cast<size_t>(End - P) < N) {
      Bad = true;
      return false;
    }
    return true;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(P[I]))
           << (8 * I);
    P += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(P[I]))
           << (8 * I);
    P += 8;
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(P, N);
    P += N;
    return S;
  }
};

// --- pattern section ----------------------------------------------------
// Node symbols serialize as name strings (symbol ids are table-local); the
// reader interns into its own table. Node order and child slices copy
// verbatim — canonical node numbering is structural (first-visit from the
// roots), so it is already symbol-table-independent.

void putPattern(std::string &Out, const Pattern &P, const SymbolTable &Syms) {
  putU32(Out, static_cast<uint32_t>(P.Nodes.size()));
  for (const PatNode &N : P.Nodes) {
    Out.push_back(static_cast<char>(N.K));
    bool HasSym = N.K == PatKind::ConP || N.K == PatKind::StrP;
    Out.push_back(HasSym ? 1 : 0);
    if (HasSym)
      putStr(Out, Syms.name(N.Sym));
    putI64(Out, N.Num);
    // ChildBegin ships explicitly: slices need not be laid out in node
    // order (canonicalization and lub build layouts of their own), so it
    // cannot be recomputed by accumulation on the way back in.
    putU32(Out, static_cast<uint32_t>(N.ChildBegin));
    putU32(Out, static_cast<uint32_t>(N.ChildCount));
  }
  putU32(Out, static_cast<uint32_t>(P.ChildStore.size()));
  for (int32_t C : P.ChildStore)
    putU32(Out, static_cast<uint32_t>(C));
  putU32(Out, static_cast<uint32_t>(P.Roots.size()));
  for (int32_t R : P.Roots)
    putU32(Out, static_cast<uint32_t>(R));
}

Pattern getPattern(Reader &R, SymbolTable &Syms) {
  Pattern P;
  uint32_t NumNodes = R.u32();
  // Guard against truncated/corrupt counts before reserving.
  if (!R.need(NumNodes * 2))
    return P;
  P.Nodes.reserve(NumNodes);
  for (uint32_t I = 0; I != NumNodes && !R.Bad; ++I) {
    PatNode N;
    if (!R.need(2))
      break;
    N.K = static_cast<PatKind>(*R.P++);
    bool HasSym = *R.P++ != 0;
    if (HasSym)
      N.Sym = Syms.intern(R.str());
    N.Num = R.i64();
    N.ChildBegin = static_cast<int32_t>(R.u32());
    N.ChildCount = static_cast<int32_t>(R.u32());
    P.Nodes.push_back(N);
  }
  uint32_t NumChildren = R.u32();
  P.ChildStore.reserve(NumChildren);
  for (uint32_t I = 0; I != NumChildren && !R.Bad; ++I)
    P.ChildStore.push_back(static_cast<int32_t>(R.u32()));
  uint32_t NumRoots = R.u32();
  P.Roots.reserve(NumRoots);
  for (uint32_t I = 0; I != NumRoots && !R.Bad; ++I)
    P.Roots.push_back(static_cast<int32_t>(R.u32()));
  if (R.Bad)
    return P;
  // Index hygiene before anything downstream walks the DAG: every child
  // slice must land inside ChildStore, and every root and child id must
  // name a node. Corrupt bytes become a load error, never a bad access.
  auto NodeOk = [&](int32_t Id) {
    return Id >= 0 && static_cast<uint32_t>(Id) < NumNodes;
  };
  for (const PatNode &N : P.Nodes)
    if (N.ChildCount < 0 || N.ChildBegin < 0 ||
        static_cast<uint64_t>(N.ChildBegin) +
                static_cast<uint64_t>(N.ChildCount) >
            NumChildren) {
      R.Bad = true;
      return P;
    }
  for (int32_t C : P.ChildStore)
    if (!NodeOk(C)) {
      R.Bad = true;
      return P;
    }
  for (int32_t Root : P.Roots)
    if (!NodeOk(Root)) {
      R.Bad = true;
      return P;
    }
  return P;
}

void putOptPattern(std::string &Out, const std::optional<Pattern> &P,
                   const SymbolTable &Syms) {
  Out.push_back(P ? 1 : 0);
  if (P)
    putPattern(Out, *P, Syms);
}

std::optional<Pattern> getOptPattern(Reader &R, SymbolTable &Syms) {
  if (!R.need(1))
    return std::nullopt;
  bool Has = *R.P++ != 0;
  if (!Has)
    return std::nullopt;
  return getPattern(R, Syms);
}

void putSig(std::string &Out, const PredSig &S) {
  putStr(Out, S.Name);
  putU32(Out, static_cast<uint32_t>(S.Arity));
}

PredSig getSig(Reader &R) {
  PredSig S;
  S.Name = R.str();
  S.Arity = static_cast<int32_t>(R.u32());
  return S;
}

} // namespace

std::string SummaryBundle::serialize(const SymbolTable &Syms) const {
  std::string Out;
  Out.append(kMagic, 4);
  putU32(Out, kVersion);
  putStr(Out, DomainName);
  putU32(Out, static_cast<uint32_t>(DepthLimit));
  putU64(Out, ModuleFingerprint);

  putU32(Out, static_cast<uint32_t>(Summaries.size()));
  for (const Summary &S : Summaries) {
    putSig(Out, S.Sig);
    putPattern(Out, S.Call, Syms);
    putOptPattern(Out, S.Success, Syms);
  }

  putU32(Out, static_cast<uint32_t>(PredCodes.size()));
  for (const PredCode &P : PredCodes) {
    putSig(Out, P.Sig);
    putU64(Out, P.CodeFp);
  }

  putU32(Out, static_cast<uint32_t>(TraceSigs.size()));
  for (const auto &[Pid, Sig] : TraceSigs) {
    putU32(Out, static_cast<uint32_t>(Pid));
    putSig(Out, Sig);
  }

  putU32(Out, static_cast<uint32_t>(Traces.size()));
  for (const std::shared_ptr<const RunTrace> &T : Traces) {
    putU32(Out, static_cast<uint32_t>(T->Pred));
    putPattern(Out, T->Call, Syms);
    putOptPattern(Out, T->PreSuccess, Syms);
    putU64(Out, T->Steps);
    putU64(Out, T->Activations);
    putU32(Out, static_cast<uint32_t>(T->Ops.size()));
    for (const TraceOp &Op : T->Ops) {
      Out.push_back(static_cast<char>(Op.K));
      Out.push_back(Op.Created ? 1 : 0);
      putU32(Out, static_cast<uint32_t>(Op.Pred));
      putPattern(Out, Op.Call, Syms);
      putOptPattern(Out, Op.Summary, Syms);
    }
  }
  return Out;
}

Result<SummaryBundle> SummaryBundle::deserialize(std::string_view Bytes,
                                                 SymbolTable &Syms) {
  Reader R{Bytes.data(), Bytes.data() + Bytes.size()};
  if (!R.need(4) || std::memcmp(R.P, kMagic, 4) != 0)
    return makeError("summary bundle: bad magic (not a bundle file)");
  R.P += 4;
  uint32_t Version = R.u32();
  if (Version != kVersion)
    return makeError("summary bundle: unsupported format version " +
                     std::to_string(Version) + " (expected " +
                     std::to_string(kVersion) + ")");

  SummaryBundle B;
  B.DomainName = R.str();
  B.DepthLimit = static_cast<int32_t>(R.u32());
  B.ModuleFingerprint = R.u64();

  uint32_t NumSummaries = R.u32();
  for (uint32_t I = 0; I != NumSummaries && !R.Bad; ++I) {
    Summary S;
    S.Sig = getSig(R);
    S.Call = getPattern(R, Syms);
    S.Success = getOptPattern(R, Syms);
    B.Summaries.push_back(std::move(S));
  }

  uint32_t NumCodes = R.u32();
  for (uint32_t I = 0; I != NumCodes && !R.Bad; ++I) {
    PredCode P;
    P.Sig = getSig(R);
    P.CodeFp = R.u64();
    B.PredCodes.push_back(std::move(P));
  }

  uint32_t NumSigs = R.u32();
  for (uint32_t I = 0; I != NumSigs && !R.Bad; ++I) {
    int32_t Pid = static_cast<int32_t>(R.u32());
    B.TraceSigs.emplace_back(Pid, getSig(R));
  }

  uint32_t NumTraces = R.u32();
  for (uint32_t I = 0; I != NumTraces && !R.Bad; ++I) {
    auto T = std::make_shared<RunTrace>();
    T->Pred = static_cast<int32_t>(R.u32());
    T->Call = getPattern(R, Syms);
    T->PreSuccess = getOptPattern(R, Syms);
    T->Steps = R.u64();
    T->Activations = R.u64();
    uint32_t NumOps = R.u32();
    if (!R.need(NumOps))
      break;
    T->Ops.reserve(NumOps);
    for (uint32_t J = 0; J != NumOps && !R.Bad; ++J) {
      TraceOp Op;
      if (!R.need(2))
        break;
      Op.K = static_cast<TraceOp::Kind>(*R.P++);
      Op.Created = *R.P++ != 0;
      Op.Pred = static_cast<int32_t>(R.u32());
      Op.Call = getPattern(R, Syms);
      Op.Summary = getOptPattern(R, Syms);
      T->Ops.push_back(std::move(Op));
    }
    B.Traces.push_back(std::move(T));
  }

  if (R.Bad)
    return makeError("summary bundle: truncated or corrupt");
  if (R.P != R.End)
    return makeError("summary bundle: trailing bytes after payload");
  return B;
}
