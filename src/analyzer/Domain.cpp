//===- analyzer/Domain.cpp - Default domain and registry ------------------===//
//
// The Domain base-class hook bodies below are the paper's mode/type/
// aliasing analysis, moved verbatim from the abstract machine and the
// pattern interner: the default domain *is* the pre-refactor engine, which
// is what makes its output byte-identical to the seed analyzer.
//
//===----------------------------------------------------------------------===//

#include "analyzer/Domain.h"

#include "absdom/AbsOps.h"

using namespace awam;

void Domain::abstractCall(const Store &St, const std::vector<Cell> &Args,
                          CanonicalizeContext &Ctx, Pattern &Out,
                          int DepthLimit, DomainRunState *) const {
  // The paper widens specific constants to their types when abstracting a
  // call — p(a, ...) is analyzed as p(atom, ...).
  Ctx.canonicalizeInto(St, Args, Out, DepthLimit, /*WidenConstants=*/true);
}

void Domain::abstractSuccess(const Store &St, const std::vector<Cell> &Args,
                             CanonicalizeContext &Ctx, Pattern &Out,
                             int DepthLimit, DomainRunState *) const {
  // Success patterns keep specific constants.
  Ctx.canonicalizeInto(St, Args, Out, DepthLimit);
}

bool Domain::applySuccess(Store &St, const std::vector<Cell> &CallerArgs,
                          const PatternRef &Success,
                          std::vector<int64_t> &CellOf,
                          std::vector<int64_t> &Roots,
                          DomainRunState *) const {
  // lookupET's return path: instantiate the summary and set-unify each
  // root into the caller's argument cells, stopping at the first empty
  // meet. Partial bindings are the caller's backtracking to undo.
  instantiate(St, Success, CellOf, Roots);
  bool Ok = true;
  for (size_t I = 0; I != Roots.size() && Ok; ++I)
    Ok = absUnify(St, CallerArgs[I], Cell::ref(Roots[I]));
  return Ok;
}

void Domain::lubInto(const PatternRef &A, const PatternRef &B,
                     int DepthLimit, LubScratch &S, Pattern &Out) const {
  // Pooled equivalent of lubPatterns: instantiate both sides into the
  // scratch store, lub cell-wise, re-canonicalize into the pooled result.
  S.Scratch.reset();
  instantiate(S.Scratch, A, S.CellOf, S.RootsA);
  instantiate(S.Scratch, B, S.CellOf, S.RootsB);
  LubContext LCtx(S.Scratch);
  S.CellArgs.clear();
  for (size_t I = 0; I != S.RootsA.size(); ++I)
    S.CellArgs.push_back(Cell::ref(
        LCtx.lub(Cell::ref(S.RootsA[I]), Cell::ref(S.RootsB[I]))));
  S.Ctx.canonicalizeInto(S.Scratch, S.CellArgs, Out, DepthLimit);
}

void Domain::normalizeEntry(const Pattern &P, int DepthLimit, LubScratch &S,
                            Pattern &Out) const {
  // Entry patterns are hand-built (makeEntryPattern / parseEntrySpec):
  // instantiate and re-canonicalize into first-visit-order form.
  S.Scratch.reset();
  instantiate(S.Scratch, P, S.CellOf, S.RootsA);
  S.CellArgs.clear();
  for (int64_t Addr : S.RootsA)
    S.CellArgs.push_back(Cell::ref(Addr));
  S.Ctx.canonicalizeInto(S.Scratch, S.CellArgs, Out, DepthLimit);
}

std::unique_ptr<DomainRunState> Domain::makeRunState() const {
  return nullptr;
}

std::string Domain::formatPattern(const Pattern &P,
                                  const SymbolTable &Syms) const {
  return P.str(Syms);
}

std::string Domain::formatFacts(const AnalysisResult &,
                                const CompiledProgram &) const {
  return std::string();
}

void Domain::samplePatterns(std::vector<Pattern> &Out,
                            SymbolTable &Syms) const {
  // Arity-3 tuples over the simple kinds plus specific constants and
  // typed lists: a spread of lattice heights and incomparable pairs.
  // Hand-built root-order patterns are already in canonical first-visit
  // order (no sharing, one node per leaf root, list element after its
  // list node) — the same layout canonicalize would emit.
  using K = PatKind;
  const K Kinds[] = {K::VarP,   K::AnyP,   K::NVP,  K::GroundP,
                     K::ConstP, K::AtomTP, K::IntTP};
  for (K A : Kinds)
    for (K B : Kinds)
      Out.push_back(makeEntryPattern({A, B, K::AnyP}));
  Out.push_back(makeEntryPattern({K::ListP, K::GroundP, K::VarP}));
  Out.push_back(makeEntryPattern({K::GroundP, K::ListP, K::ListP}));
  // Specific constants: an atom, nil, and an integer.
  Symbol Foo = Syms.intern("foo");
  Symbol Nil = Syms.intern("[]");
  auto Leaf = [](PatKind LK, Symbol Sym, int64_t Num) {
    PatNode N;
    N.K = LK;
    N.Sym = Sym;
    N.Num = Num;
    return N;
  };
  Pattern P1;
  P1.Nodes = {Leaf(K::ConP, Foo, 0), Leaf(K::AnyP, 0, 0),
              Leaf(K::IntP, 0, 7)};
  P1.Roots = {0, 1, 2};
  Out.push_back(std::move(P1));
  Pattern P2;
  P2.Nodes = {Leaf(K::ConP, Nil, 0), Leaf(K::IntTP, 0, 0),
              Leaf(K::IntP, 0, 7)};
  P2.Roots = {0, 1, 2};
  Out.push_back(std::move(P2));
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// The paper's domain: every hook is the Domain default.
class ModesDomain final : public Domain {
public:
  std::string_view name() const override { return "modes"; }
  std::string_view description() const override {
    return "the paper's mode/type/aliasing domain (default)";
  }
};

} // namespace

const Domain &awam::defaultDomain() {
  static const ModesDomain D;
  return D;
}

const std::vector<const Domain *> &awam::registeredDomains() {
  static const std::vector<const Domain *> All = {&defaultDomain(),
                                                  &posDomain(),
                                                  &detDomain()};
  return All;
}

const Domain *awam::findDomain(std::string_view Name) {
  for (const Domain *D : registeredDomains())
    if (D->name() == Name)
      return D;
  return nullptr;
}

std::string awam::registeredDomainNames() {
  std::string Out;
  for (const Domain *D : registeredDomains()) {
    if (!Out.empty())
      Out += ", ";
    Out += D->name();
  }
  return Out;
}

Result<const Domain *> awam::resolveDomain(std::string_view Name) {
  if (const Domain *D = findDomain(Name))
    return D;
  return makeError("unknown abstract domain '" + std::string(Name) +
                   "' (registered: " + registeredDomainNames() + ")");
}
