//===- analyzer/ParallelScheduler.h - Deterministic parallel driver -*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-threaded worklist driver. It produces tables *byte-identical*
/// to the sequential WorklistScheduler (and hence the naive driver) on
/// every input, for every thread count, by keeping the commit order
/// exactly the sequential drain order and treating parallel work as pure
/// speculation:
///
///  1. The master thread pops ready activations from one SchedulerCore in
///     precisely the sequential (sweep, Idx) order.
///  2. On a pop with no usable speculation, it freezes the master state
///     and fans out a batch of ready entries — the popped entry plus the
///     entries the sequential drain would run next, sized adaptively
///     from the observed commit/discard history and extended into the
///     next sweep when the current ready set is narrow — to a fixed
///     thread pool. Each worker runs AbstractMachine::runActivation on
///     its own machine against an *overlay* ExtensionTable (shares the
///     frozen master's entry pages by reference and copies a page only
///     on first write; see ExtensionTable overlay mode), with an overlay
///     PatternInterner sharing the master's id space read-only (so no
///     interner sharding or locking is needed, and summary ids the
///     master already knows commit without re-interning) and a cloned
///     SchedulerCore that answers the machine's shouldReexplore queries
///     exactly as the sequential schedule would have. Every sink event
///     is recorded in an ordered log; nothing escapes the worker.
///     A pop whose batch would contain only itself bypasses the
///     speculation machinery entirely and runs live.
///  3. Back on the master thread, each subsequent pop validates the
///     entry's cached speculation against the *live* state: every base
///     entry the speculation touched must still have the SuccessVersion /
///     EverExplored it observed, entry creations must not race with
///     entries created since the freeze, and every recorded
///     shouldReexplore answer must replay identically against a clone of
///     the live core. A valid speculation commits by replaying its event
///     log — summary growth lands in ascending-use order, creations get
///     exactly the Idx the sequential run would have assigned — and a
///     failed validation simply falls back to running the activation
///     live on the master machine. Batch item 0 is the popped entry
///     itself, whose speculation ran against the very state it commits
///     into, so every batch makes progress.
///
/// Counters (instructions, activations, scheduler stats) are charged for
/// *committed* runs only, so they too are independent of the thread count;
/// discarded speculation is reported separately through SpecStats. Only
/// the table probe counter is approximate under this driver.
///
/// See DESIGN.md §11 for the protocol write-up and the argument that a
/// committed speculation is indistinguishable from a sequential run.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_PARALLELSCHEDULER_H
#define AWAM_ANALYZER_PARALLELSCHEDULER_H

#include "analyzer/Scheduler.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace awam {

/// A fixed-size pool of speculation workers. The pool owns Threads - 1
/// helper threads; the caller of runBatch participates as worker 0, so
/// `Threads` is the total parallelism. Kept separate from the scheduler
/// (and owned by the AnalysisSession) so repeated analyze() calls reuse
/// the threads instead of paying spawn latency per run.
class SpecPool {
public:
  explicit SpecPool(int Threads);
  ~SpecPool();

  SpecPool(const SpecPool &) = delete;
  SpecPool &operator=(const SpecPool &) = delete;

  /// Total workers, including the calling thread.
  int threads() const { return NumThreads; }

  /// Runs \p Fn(workerId) on every worker (ids 0..threads()-1; the caller
  /// runs id 0) and returns when all are done. Not reentrant.
  void runBatch(const std::function<void(int)> &Fn);

private:
  void helperMain(int Id);

  int NumThreads;
  std::vector<std::thread> Helpers;
  std::mutex M;
  std::condition_variable WakeCV; ///< helpers: a new batch is available
  std::condition_variable DoneCV; ///< caller: all helpers finished
  const std::function<void(int)> *Job = nullptr;
  uint64_t Generation = 0;
  int Outstanding = 0;
  bool Stopping = false;
};

/// The deterministic speculative parallel driver (see file comment).
/// Drives the same SchedulerCore state machine as WorklistScheduler; one
/// instance drives one analysis run.
class ParallelScheduler final : public DependencySink {
public:
  using Stats = SchedulerCore::Stats;
  using Status = WorklistScheduler::Status;

  /// Speculation effectiveness counters (thread-count dependent, unlike
  /// Stats, which reflects only the committed — sequential-identical —
  /// schedule).
  struct SpecStats {
    uint64_t Batches = 0;    ///< speculation fan-outs performed
    uint64_t Speculated = 0; ///< activation runs executed speculatively
    uint64_t Committed = 0;  ///< speculations replayed into the master
    uint64_t Discarded = 0;  ///< speculations invalidated or orphaned
    uint64_t Bypassed = 0;   ///< pops run live because the batch would be 1
    uint64_t CrossSweep = 0; ///< speculations targeted at the next sweep
    uint64_t PagesCopied = 0; ///< overlay pages privatized (COW clones)
    uint64_t BaseTouches = 0; ///< base entries touched by speculations
  };

  /// Adaptive batch-sizing knobs (AnalyzerOptions::SpecBatch{Min,Max}):
  /// the batch grows by doubling after a full batch of clean commits and
  /// halves on any discard, staying within [BatchMin, BatchMax].
  struct Tuning {
    int BatchMin;
    int BatchMax;
    // Explicit constructors (not default member initializers) so the
    // enclosing class can default-construct one in a default argument.
    Tuning() : BatchMin(2), BatchMax(32) {}
    Tuning(int Min, int Max) : BatchMin(Min), BatchMax(Max) {}
  };

  /// \p Journal, when non-null, receives one replayable trace per
  /// *committed* activation run, in commit (= sequential) order: committed
  /// speculations hand over the trace their worker recorded, live fallback
  /// runs record straight into it through the master machine (the session
  /// attaches it there). The journal therefore matches the one-thread
  /// recording byte-for-byte, like every other committed-schedule output.
  ParallelScheduler(ExtensionTable &Table, AbstractMachine &Machine,
                    const CompiledProgram &Program,
                    const AbsMachineOptions &MachineOptions, SpecPool &Pool,
                    RunJournal *Journal = nullptr, Tuning Tune = Tuning());
  ~ParallelScheduler() override;

  /// Drains the worklist from \p Root exactly like WorklistScheduler::run,
  /// interleaving speculative batches. Installs itself as the master
  /// machine's dependency sink for the duration.
  Status run(ETEntry &Root, int MaxSweeps);

  const Stats &stats() const { return Core.stats(); }
  const SpecStats &specStats() const { return SStats; }

  /// The core after the drain — the dependency-edge set an incremental
  /// session snapshots for its invalidation cone.
  const SchedulerCore &core() const { return Core; }

  /// On Status::Error: the machine's message, or the driver's own budget
  /// message when a committed speculation exhausted the step budget.
  const std::string &errorMessage() const { return ErrMsg; }

  // --- DependencySink (master machine, live fallback runs) ---
  bool shouldReexplore(const ETEntry &E) override {
    return Core.shouldReexplore(E.Idx);
  }
  void beginActivation(const ETEntry &E) override {
    Core.beginActivation(E.Idx);
  }
  void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                uint32_t VersionSeen) override {
    Core.noteRead(Reader.Idx, Dep.Idx, VersionSeen);
  }
  void noteChanged(const ETEntry &E) override {
    Core.noteChanged(E.Idx, E.SuccessVersion);
  }

private:
  struct Event;
  struct Spec;
  struct SpecSink;
  struct Worker;

  /// One batch slot: the entry to speculate and the sweep it is queued
  /// for (the next sweep when the current ready set is narrow).
  struct BatchItem {
    int32_t Idx;
    uint64_t Sweep;
  };

  void speculateBatch(const std::vector<BatchItem> &Batch);
  /// True if \p Caller's clause code has a direct call/execute of
  /// \p Callee (the static call graph, built once in the constructor).
  /// Entries of directly related predicates never share a speculation
  /// batch: the caller's run can consume the callee's pending run inline
  /// or read its stale summary, dooming the co-speculation either way.
  bool callsDirectly(int32_t Caller, int32_t Callee) const {
    return Caller >= 0 && Callee >= 0 && Caller < NumPreds &&
           Callee < NumPreds &&
           StaticCalls[static_cast<size_t>(Caller) * NumPreds + Callee];
  }
  void speculateOne(Worker &W, int32_t RootIdx, uint64_t TargetSweep,
                    Spec &Out);
  bool validate(const Spec &S) const;
  void commit(Spec &S);
  bool takeCached(int32_t RootIdx, Spec &Out);
  void purgeDeadCache();
  /// Adaptive batch sizing: grow by doubling after CurBatch consecutive
  /// clean commits, halve on any discard.
  void noteCommitClean();
  void noteDiscard();

  ExtensionTable &Table;
  AbstractMachine &Machine;
  SpecPool &Pool;
  RunJournal *MasterJournal = nullptr;
  SchedulerCore Core;
  SpecStats SStats;
  Tuning Tune;
  std::string ErrMsg;
  uint64_t MaxSteps = 0;
  std::vector<std::unique_ptr<Worker>> Workers;
  /// Pred-by-pred adjacency matrix of direct call/execute instructions
  /// (see callsDirectly).
  std::vector<char> StaticCalls;
  int32_t NumPreds = 0;
  std::vector<Spec> Cache;      ///< pending speculations from the last batch
  std::vector<Spec> BatchSpecs; ///< per-batch result slots (index = batch pos)
  size_t CurBatch = 2;      ///< current adaptive batch size
  size_t CleanStreak = 0;   ///< consecutive commits since the last discard
};

} // namespace awam

#endif // AWAM_ANALYZER_PARALLELSCHEDULER_H
