//===- analyzer/ParallelScheduler.h - Deterministic parallel driver -*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-threaded worklist driver. It produces tables *byte-identical*
/// to the sequential WorklistScheduler (and hence the naive driver) on
/// every input, for every thread count, by keeping the commit order
/// exactly the sequential drain order and treating parallel work as pure
/// speculation:
///
///  1. The master thread pops ready activations from one SchedulerCore in
///     precisely the sequential (sweep, Idx) order.
///  2. On a pop with no usable speculation, it freezes the master state
///     and fans the entire ready set of the current sweep — the popped
///     entry plus the entries the sequential drain would run next — out
///     to a fixed thread pool. Each worker runs AbstractMachine::
///     runActivation on its own machine against an *overlay*
///     ExtensionTable (read-snapshot of the frozen master plus local
///     copy-on-first-touch shadows; see ExtensionTable overlay mode),
///     with its own PatternInterner (so no interner sharding or locking
///     is needed at all) and a cloned SchedulerCore that answers the
///     machine's shouldReexplore queries exactly as the sequential
///     schedule would have. Every sink event is recorded in an ordered
///     log; nothing escapes the worker.
///  3. Back on the master thread, each subsequent pop validates the
///     entry's cached speculation against the *live* state: every base
///     entry the speculation touched must still have the SuccessVersion /
///     EverExplored it observed, entry creations must not race with
///     entries created since the freeze, and every recorded
///     shouldReexplore answer must replay identically against a clone of
///     the live core. A valid speculation commits by replaying its event
///     log — summary growth lands in ascending-use order, creations get
///     exactly the Idx the sequential run would have assigned — and a
///     failed validation simply falls back to running the activation
///     live on the master machine. Batch item 0 is the popped entry
///     itself, whose speculation ran against the very state it commits
///     into, so every batch makes progress.
///
/// Counters (instructions, activations, scheduler stats) are charged for
/// *committed* runs only, so they too are independent of the thread count;
/// discarded speculation is reported separately through SpecStats. Only
/// the table probe counter is approximate under this driver.
///
/// See DESIGN.md §11 for the protocol write-up and the argument that a
/// committed speculation is indistinguishable from a sequential run.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_PARALLELSCHEDULER_H
#define AWAM_ANALYZER_PARALLELSCHEDULER_H

#include "analyzer/Scheduler.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace awam {

/// A fixed-size pool of speculation workers. The pool owns Threads - 1
/// helper threads; the caller of runBatch participates as worker 0, so
/// `Threads` is the total parallelism. Kept separate from the scheduler
/// (and owned by the AnalysisSession) so repeated analyze() calls reuse
/// the threads instead of paying spawn latency per run.
class SpecPool {
public:
  explicit SpecPool(int Threads);
  ~SpecPool();

  SpecPool(const SpecPool &) = delete;
  SpecPool &operator=(const SpecPool &) = delete;

  /// Total workers, including the calling thread.
  int threads() const { return NumThreads; }

  /// Runs \p Fn(workerId) on every worker (ids 0..threads()-1; the caller
  /// runs id 0) and returns when all are done. Not reentrant.
  void runBatch(const std::function<void(int)> &Fn);

private:
  void helperMain(int Id);

  int NumThreads;
  std::vector<std::thread> Helpers;
  std::mutex M;
  std::condition_variable WakeCV; ///< helpers: a new batch is available
  std::condition_variable DoneCV; ///< caller: all helpers finished
  const std::function<void(int)> *Job = nullptr;
  uint64_t Generation = 0;
  int Outstanding = 0;
  bool Stopping = false;
};

/// The deterministic speculative parallel driver (see file comment).
/// Drives the same SchedulerCore state machine as WorklistScheduler; one
/// instance drives one analysis run.
class ParallelScheduler final : public DependencySink {
public:
  using Stats = SchedulerCore::Stats;
  using Status = WorklistScheduler::Status;

  /// Speculation effectiveness counters (thread-count dependent, unlike
  /// Stats, which reflects only the committed — sequential-identical —
  /// schedule).
  struct SpecStats {
    uint64_t Batches = 0;    ///< speculation fan-outs performed
    uint64_t Speculated = 0; ///< activation runs executed speculatively
    uint64_t Committed = 0;  ///< speculations replayed into the master
    uint64_t Discarded = 0;  ///< speculations invalidated or orphaned
  };

  /// \p Journal, when non-null, receives one replayable trace per
  /// *committed* activation run, in commit (= sequential) order: committed
  /// speculations hand over the trace their worker recorded, live fallback
  /// runs record straight into it through the master machine (the session
  /// attaches it there). The journal therefore matches the one-thread
  /// recording byte-for-byte, like every other committed-schedule output.
  ParallelScheduler(ExtensionTable &Table, AbstractMachine &Machine,
                    const CompiledProgram &Program,
                    const AbsMachineOptions &MachineOptions, SpecPool &Pool,
                    RunJournal *Journal = nullptr);
  ~ParallelScheduler() override;

  /// Drains the worklist from \p Root exactly like WorklistScheduler::run,
  /// interleaving speculative batches. Installs itself as the master
  /// machine's dependency sink for the duration.
  Status run(ETEntry &Root, int MaxSweeps);

  const Stats &stats() const { return Core.stats(); }
  const SpecStats &specStats() const { return SStats; }

  /// The core after the drain — the dependency-edge set an incremental
  /// session snapshots for its invalidation cone.
  const SchedulerCore &core() const { return Core; }

  /// On Status::Error: the machine's message, or the driver's own budget
  /// message when a committed speculation exhausted the step budget.
  const std::string &errorMessage() const { return ErrMsg; }

  // --- DependencySink (master machine, live fallback runs) ---
  bool shouldReexplore(const ETEntry &E) override {
    return Core.shouldReexplore(E.Idx);
  }
  void beginActivation(const ETEntry &E) override {
    Core.beginActivation(E.Idx);
  }
  void noteRead(const ETEntry &Reader, const ETEntry &Dep,
                uint32_t VersionSeen) override {
    Core.noteRead(Reader.Idx, Dep.Idx, VersionSeen);
  }
  void noteChanged(const ETEntry &E) override {
    Core.noteChanged(E.Idx, E.SuccessVersion);
  }

private:
  struct Event;
  struct Spec;
  struct SpecSink;
  struct Worker;

  void speculateBatch(const std::vector<int32_t> &Batch);
  void speculateOne(Worker &W, int32_t RootIdx, Spec &Out);
  bool validate(const Spec &S) const;
  void commit(Spec &S);
  bool takeCached(int32_t RootIdx, Spec &Out);
  void purgeDeadCache();

  ExtensionTable &Table;
  AbstractMachine &Machine;
  SpecPool &Pool;
  RunJournal *MasterJournal = nullptr;
  SchedulerCore Core;
  SpecStats SStats;
  std::string ErrMsg;
  uint64_t MaxSteps = 0;
  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<Spec> Cache;      ///< pending speculations from the last batch
  std::vector<Spec> BatchSpecs; ///< per-batch result slots (index = batch pos)
  /// Largest ready-set prefix speculated per batch; bounds wasted work
  /// when early commits invalidate the tail.
  static constexpr size_t kMaxBatch = 32;
};

} // namespace awam

#endif // AWAM_ANALYZER_PARALLELSCHEDULER_H
