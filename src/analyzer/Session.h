//===- analyzer/Session.h - Analysis session façade -------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point of the analyzer. An AnalysisSession owns the
/// pieces one analysis run wires together — compiled program, pattern
/// interner, extension table, abstract machine, fixpoint driver, counters,
/// options — and exposes the two-line API every client (bench/, tests/,
/// examples/) uses:
///
///   AnalysisSession S(Compiled);            // or (Compiled, Options)
///   Result<AnalysisResult> R = S.analyze("qsort(glist, var, var)");
///
/// Which fixpoint driver runs is an option (AnalyzerOptions::Driver): the
/// paper's naive restart loop, or the dependency-driven worklist scheduler
/// (the default; see analyzer/Scheduler.h). Both compute the identical
/// extension-table fixpoint.
///
/// Alternative analyzers plug in through the Backend interface — the
/// meta-interpreting baseline wraps itself as one (see
/// baseline/MetaAnalyzer.h, makeBaselineSession) so cross-validation runs
/// both analyzers through this same façade.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_SESSION_H
#define AWAM_ANALYZER_SESSION_H

#include "analyzer/Analyzer.h"
#include "analyzer/Incremental.h"
#include "analyzer/ParallelScheduler.h"
#include "analyzer/Scheduler.h"
#include "analyzer/Store.h"

#include <memory>
#include <string>

namespace awam {

/// One analysis setup over a program; analyze() may be called repeatedly
/// (each call computes a fresh fixpoint).
class AnalysisSession {
public:
  /// A pluggable analysis engine. The compiled abstract machine is the
  /// built-in one; baseline analyzers adapt themselves to this interface
  /// so every client drives them through the same façade.
  class Backend {
  public:
    virtual ~Backend() = default;
    virtual Result<AnalysisResult> analyze(std::string_view Name,
                                           const Pattern &Entry) = 0;
  };

  /// Session over the compiled abstract machine (the paper's system).
  explicit AnalysisSession(const CompiledProgram &Program,
                           AnalyzerOptions Options = {});

  /// Session over a custom backend (see baseline/MetaAnalyzer.h,
  /// makeBaselineSession).
  explicit AnalysisSession(std::unique_ptr<Backend> Custom,
                           AnalyzerOptions Options = {});

  AnalysisSession(AnalysisSession &&) noexcept;
  AnalysisSession &operator=(AnalysisSession &&) noexcept;
  ~AnalysisSession();

  /// Analyzes from entry predicate \p Name with calling pattern \p Entry
  /// (arity = Entry's root count). Returns the fixpoint table.
  Result<AnalysisResult> analyze(std::string_view Name,
                                 const Pattern &Entry);

  /// Analyzes from a spec string; both overloads share this one parse and
  /// entry-resolution path (see parseEntrySpec for the accepted forms).
  Result<AnalysisResult> analyze(std::string_view EntrySpec);

  /// Re-analyzes the session's program from the last analyze() entry goal
  /// after the clauses of \p EditedPreds changed, replaying the previous
  /// run's recorded activation traces wherever they still validate (see
  /// analyzer/Incremental.h). The result — table, counters, formatted
  /// report — is byte-identical to a fresh analyze() of the edited
  /// program. Requires a prior analyze(); without recorded traces (
  /// AnalyzerOptions::Incremental off, or the naive driver) it degrades to
  /// that fresh analyze(). Chains: each reanalyze records for the next.
  Result<AnalysisResult> reanalyze(const std::vector<PredSig> &EditedPreds);

  /// Persistent-session form that re-answers \p EntrySpec instead of the
  /// session's most recent entry goal. On a store shared by several
  /// clients "the most recent entry" depends on request interleaving; the
  /// multi-tenant server (analyzer/Server.h) routes each client's edits
  /// through that client's own last spec instead. Errors on
  /// non-persistent sessions.
  Result<AnalysisResult> reanalyze(const std::vector<PredSig> &EditedPreds,
                                   std::string_view EntrySpec);

  /// Convenience overload: diffs \p Edited against the current program
  /// clause-by-clause to find the edited predicates, then re-analyzes with
  /// \p Edited installed as the session's program. \p Edited must outlive
  /// the session (like the constructor's program) and should be compiled
  /// against the same SymbolTable — with a different table every predicate
  /// is conservatively treated as edited (patterns embed symbol ids).
  Result<AnalysisResult> reanalyze(const CompiledProgram &Edited);

  /// Analyzes every spec of \p EntrySpecs in order and returns one result
  /// per spec. All specs are parsed and their entry predicates resolved
  /// *before any analysis runs* — a bad spec anywhere in the list aborts
  /// the whole batch up front with the usual parseEntrySpec / resolution
  /// error, leaving the session (and its store) untouched. When the
  /// configuration allows a persistent store (compiled backend, worklist
  /// driver, interning — AnalyzerOptions::Persistent not required), the
  /// batch shares one warm store: later entries replay the table work of
  /// earlier ones, with each result still byte-identical to a scratch
  /// analyze() of its spec. Other configurations run the specs as
  /// independent scratch analyses.
  Result<std::vector<AnalysisResult>>
  analyzeBatch(const std::vector<std::string> &EntrySpecs);

  /// Serializes the session store's derived summaries + replay traces
  /// into a module-independent byte bundle (see
  /// AnalysisStore::exportSummaries). Creates the store if needed; errors
  /// when the configuration cannot back one (custom backend, naive
  /// driver, no interning).
  Result<std::string> exportSummaries();

  /// Imports a serialized bundle into the session store, banking its
  /// still-valid traces as warm-start hints for subsequent analyses (see
  /// AnalysisStore::importSummaries — answers stay byte-identical to
  /// scratch whatever is imported).
  Result<AnalysisStore::ImportStats> importSummaries(std::string_view Bytes);

  /// Adjusts the driver budgets for subsequent analyses (and the store's
  /// future queries — cached store results keep the budgets they were
  /// computed under).
  void setBudgets(int MaxIterations, uint64_t MaxSteps);

  const AnalyzerOptions &options() const { return Options; }

  /// The extension table of the most recent analyze() over the compiled
  /// machine (nullptr before the first run or on a custom backend). On a
  /// persistent session this is the store's multi-root table.
  const ExtensionTable *table() const {
    return PStore ? &PStore->table() : Table.get();
  }

  /// The persistent store behind this session (nullptr until the first
  /// analyze()/analyzeBatch() that creates one — see
  /// AnalyzerOptions::Persistent).
  const AnalysisStore *store() const { return PStore.get(); }

  /// Scheduler statistics of the most recent worklist run — sequential or
  /// parallel (nullptr under the naive driver or a custom backend).
  const WorklistScheduler::Stats *schedulerStats() const;

  /// Speculation statistics of the most recent parallel run (nullptr when
  /// the last run used one thread, the naive driver, or a custom backend).
  const ParallelScheduler::SpecStats *specStats() const;

  /// Replay statistics of the most recent reanalyze() (nullptr when the
  /// last run was a plain analyze() or fell back to one).
  const IncrementalScheduler::ReanalyzeStats *reanalyzeStats() const;

private:
  Result<AnalysisResult> analyzeCompiled(std::string_view Name,
                                         const Pattern &Entry);
  /// The session's AnalysisStore, created on first use; errors when the
  /// configuration cannot back one (custom backend, naive driver, no
  /// interning).
  Result<AnalysisStore *> ensureStore();
  Result<AnalysisResult> reanalyzeCompiled(const std::vector<PredSig> &Edited,
                                           uint64_t ConeEntries);
  /// Fills the statistics tail (instructions, probes, counters, items)
  /// shared by analyzeCompiled and reanalyzeCompiled.
  void finishResult(AnalysisResult &R);
  /// The dependency core of the most recent drain, whichever driver ran it.
  const SchedulerCore *lastCore() const;
  /// Entries of the current table in the reverse-dependency closure of
  /// \p Edited — the invalidation cone the upcoming reanalyze reports.
  uint64_t coneSize(const std::vector<PredSig> &Edited) const;

  const CompiledProgram *Program = nullptr;
  std::unique_ptr<Backend> Custom;
  AnalyzerOptions Options;
  /// The abstract domain AnalyzerOptions::DomainName resolved to (a static
  /// registry singleton; see analyzer/Domain.h). Set per analyze() call —
  /// null before the first run or on a custom backend.
  const Domain *Dom = nullptr;

  // Rebuilt per analyze() call; kept alive for post-run inspection.
  std::unique_ptr<PatternInterner> Interner;
  std::unique_ptr<ExtensionTable> Table;
  std::unique_ptr<AbstractMachine> Machine;
  std::unique_ptr<WorklistScheduler> Scheduler;
  std::unique_ptr<ParallelScheduler> ParSched;
  std::unique_ptr<IncrementalScheduler> IncSched;
  /// Trace log of the most recent run (AnalyzerOptions::Incremental under
  /// the worklist driver only) — what the next reanalyze() replays from.
  std::unique_ptr<RunJournal> Journal;
  /// Entry goal of the most recent analyze(), re-resolved by reanalyze().
  std::string LastEntryName;
  Pattern LastEntry;
  bool HaveEntry = false;
  /// Worker threads, created on the first NumThreads > 1 analyze() and
  /// reused across analyze() calls (thread spawn costs would otherwise
  /// dwarf these sub-millisecond analyses).
  std::unique_ptr<SpecPool> Pool;
  /// The persistent analysis store (AnalyzerOptions::Persistent, or an
  /// analyzeBatch() on a store-capable configuration). Named PStore: the
  /// WAM heap type awam::Store (wam/Store.h) already owns the plain name.
  std::unique_ptr<AnalysisStore> PStore;
};

} // namespace awam

#endif // AWAM_ANALYZER_SESSION_H
