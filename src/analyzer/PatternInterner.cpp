//===- analyzer/PatternInterner.cpp ---------------------------------------===//

#include "analyzer/PatternInterner.h"

#include "absdom/AbsOps.h"
#include "analyzer/Domain.h"

#include <cassert>

using namespace awam;

void PatternInterner::attachBase(const PatternInterner &B) {
  assert(Recs.empty() && "attachBase requires an empty overlay");
  assert(B.DepthLimit == DepthLimit && "lub results depend on the depth");
  assert(B.Dom == Dom && "lub results depend on the domain");
  assert(!B.Base && "bases do not stack");
  assert(&B != this);
  Base = &B;
  resetOverlay();
}

void PatternInterner::resetOverlay() {
  assert(Base && "resetOverlay is an overlay operation");
  Recs.clear();
  ArenaNodes.clear();
  ArenaChildren.clear();
  ArenaRoots.clear();
  Buckets.clear();
  LubMemo.clear();
  LeqMemo.clear();
  BaseCount = static_cast<PatternId>(Base->size());
}

PatternId PatternInterner::intern(const PatternRef &P) {
  uint64_t H = P.hash();
  if (Base) {
    // Shared id space first: a hit is an id the master thread can use
    // directly when this speculation commits. The base's buckets hold
    // only ids below the frozen BaseCount snapshot.
    PatternId BaseHit = Base->Buckets.findIf(
        H, [&](PatternId Id) { return Id < BaseCount && pattern(Id) == P; });
    if (BaseHit != detail::FlatMap64::kEmpty) {
      ++Stats.InternHits;
      return BaseHit;
    }
  }
  PatternId Hit =
      Buckets.findIf(H, [&](PatternId Id) { return pattern(Id) == P; });
  if (Hit != detail::FlatMap64::kEmpty) {
    ++Stats.InternHits;
    return Hit;
  }
  ++Stats.InternMisses;
  PatternId Id = static_cast<PatternId>(BaseCount + Recs.size());
  Rec R;
  R.NodeB = static_cast<uint32_t>(ArenaNodes.size());
  R.NodeN = static_cast<uint32_t>(P.NumNodes);
  R.ChildB = static_cast<uint32_t>(ArenaChildren.size());
  R.ChildN = static_cast<uint32_t>(childSlotsOf(P));
  R.RootB = static_cast<uint32_t>(ArenaRoots.size());
  R.RootN = static_cast<uint32_t>(P.NumRoots);
  ArenaNodes.insert(ArenaNodes.end(), P.Nodes, P.Nodes + P.NumNodes);
  ArenaChildren.insert(ArenaChildren.end(), P.ChildStore,
                       P.ChildStore + R.ChildN);
  ArenaRoots.insert(ArenaRoots.end(), P.Roots, P.Roots + P.NumRoots);
  Recs.push_back(R);
  Buckets.insert(H, Id);
  return Id;
}

PatternId PatternInterner::internNormalized(const Pattern &P) {
  if (Dom) {
    LubScratch S{Scratch, Ctx, CellOfBuf, RootsA, RootsB, CellArgs};
    Dom->normalizeEntry(P, DepthLimit, S, PatBuf);
    return intern(PatBuf);
  }
  Scratch.reset();
  instantiate(Scratch, P, CellOfBuf, RootsA);
  CellArgs.clear();
  for (int64_t A : RootsA)
    CellArgs.push_back(Cell::ref(A));
  Ctx.canonicalizeInto(Scratch, CellArgs, PatBuf, DepthLimit);
  return intern(PatBuf);
}

PatternId PatternInterner::lub(PatternId A, PatternId B) {
  if (A == B) {
    ++Stats.LubCacheHits; // x lub x = x needs no table
    return A;
  }
  // lub is commutative: normalize the key to the unordered pair.
  uint64_t Key = A < B ? (static_cast<uint64_t>(A) << 32) | B
                       : (static_cast<uint64_t>(B) << 32) | A;
  if (Base && A < BaseCount && B < BaseCount) {
    // The base's memo outlives local resets: every pair the master
    // already computed stays a hit in every speculation round. Base memo
    // values are base ids (the base only ever interned below BaseCount).
    PatternId BaseMemo = Base->LubMemo.lookup(Key);
    if (BaseMemo != detail::FlatMap64::kEmpty) {
      ++Stats.LubCacheHits;
      return BaseMemo;
    }
  }
  PatternId Memo = LubMemo.lookup(Key);
  if (Memo != detail::FlatMap64::kEmpty) {
    ++Stats.LubCacheHits;
    return Memo;
  }
  ++Stats.LubCacheMisses;
  if (Dom) {
    LubScratch S{Scratch, Ctx, CellOfBuf, RootsA, RootsB, CellArgs};
    Dom->lubInto(pattern(A), pattern(B), DepthLimit, S, PatBuf);
    PatternId R = intern(PatBuf);
    LubMemo.insert(Key, R);
    return R;
  }
  // Pooled equivalent of lubPatterns: instantiate both sides into the
  // scratch store, lub cell-wise, re-canonicalize into the pooled result.
  Scratch.reset();
  instantiate(Scratch, pattern(A), CellOfBuf, RootsA);
  instantiate(Scratch, pattern(B), CellOfBuf, RootsB);
  LubContext LCtx(Scratch);
  CellArgs.clear();
  for (size_t I = 0; I != RootsA.size(); ++I)
    CellArgs.push_back(
        Cell::ref(LCtx.lub(Cell::ref(RootsA[I]), Cell::ref(RootsB[I]))));
  Ctx.canonicalizeInto(Scratch, CellArgs, PatBuf, DepthLimit);
  PatternId R = intern(PatBuf);
  LubMemo.insert(Key, R);
  return R;
}

bool PatternInterner::leq(PatternId A, PatternId B) {
  if (A == B) {
    ++Stats.LeqCacheHits;
    return true;
  }
  uint64_t Key = (static_cast<uint64_t>(A) << 32) | B;
  if (Base && A < BaseCount && B < BaseCount) {
    uint32_t BaseMemo = Base->LeqMemo.lookup(Key);
    if (BaseMemo != detail::FlatMap64::kEmpty) {
      ++Stats.LeqCacheHits;
      return BaseMemo != 0;
    }
  }
  uint32_t Memo = LeqMemo.lookup(Key);
  if (Memo != detail::FlatMap64::kEmpty) {
    ++Stats.LeqCacheHits;
    return Memo != 0;
  }
  ++Stats.LeqCacheMisses;
  bool R = lub(A, B) == B;
  LeqMemo.insert(Key, R ? 1 : 0);
  return R;
}
