//===- analyzer/ExtensionTable.cpp ----------------------------------------===//

#include "analyzer/ExtensionTable.h"

#include <cassert>

using namespace awam;

// Index maps store table *positions*; position == ETEntry::Idx on ordinary
// tables and overlays alike (overlay creations continue past the base
// size). Overlay lookups probe the local indexes (created entries only)
// and then the base's frozen indexes read-only, resolving every position
// through the overlay's pages so privatized copies are seen transparently.

ETEntry &ExtensionTable::appendEntry() {
  ETEntry &E = Owned.emplace_back();
  size_t Pos = Count++;
  E.Idx = static_cast<int32_t>(Pos);
  if (Base && Pos >= BaseSize) {
    CreatedSlots.push_back(&E);
    return E;
  }
  size_t Pg = Pos >> kPageShift;
  if (Pg == Pages.size()) {
    Pages.push_back(std::make_shared<Page>());
    Pages.back()->Owner = this;
  }
  Pages[Pg]->Slots[Pos & kPageMask] = &E;
  return E;
}

void ExtensionTable::recordTouch(size_t Pos) {
  assert(Base && Pos < BaseSize);
  if (TouchMark[Pos] == TouchGen)
    return;
  TouchMark[Pos] = TouchGen;
  // Privatization always touches first, so the slot still shows the state
  // the base held when this speculation first observed the entry.
  const ETEntry &E = *slotAt(Pos);
  TouchLog.push_back({E.Idx, E.SuccessVersion, E.EverExplored});
}

ETEntry &ExtensionTable::writableAt(size_t Pos) {
  assert(Pos < Count);
  if (!Base || Pos >= BaseSize)
    return *slotAt(Pos);
  recordTouch(Pos);
  size_t Pg = Pos >> kPageShift;
  size_t Off = Pos & kPageMask;
  if (Pages[Pg]->Owner != this) {
    // First write into a shared page: clone it (COW). The clone still
    // points at base entries in its other slots — they privatize
    // individually on their own first write.
    auto Clone = std::make_shared<Page>(*Pages[Pg]);
    Clone->Owner = this;
    Pages[Pg] = std::move(Clone);
    ++PagesCopiedCount;
  }
  if (PrivMark[Pos] != TouchGen) {
    Owned.push_back(*Pages[Pg]->Slots[Off]);
    Pages[Pg]->Slots[Off] = &Owned.back();
    PrivMark[Pos] = TouchGen;
  }
  return *Pages[Pg]->Slots[Off];
}

ETEntry *ExtensionTable::find(int32_t PredId, const Pattern &Call) {
  if (WhichImpl == Impl::LinearList) {
    // One scan over the overlay view: base positions first (in Idx order,
    // like the base's own scan), then locally created entries.
    for (size_t Pos = 0; Pos != Count; ++Pos) {
      ++Probes;
      ETEntry &E = *slotAt(Pos);
      if (E.PredId == PredId && E.Call == Call)
        return Base && Pos < BaseSize ? &resolveBaseHit(Pos) : &E;
    }
    return nullptr;
  }
  if (Interner) {
    // Interned tables index structurally through StructIndex only (one
    // flat map instead of two parallel indexes).
    uint64_t K = structKey(PredId, Call.hash());
    ++Probes; // index consultation (counted on hits and misses alike)
    bool First = true;
    auto Match = [&](uint32_t Pos) {
      if (!First)
        ++Probes;
      First = false;
      const ETEntry &E = *slotAt(Pos);
      return E.PredId == PredId && E.Call == Call;
    };
    uint32_t V = StructIndex.findIf(K, Match);
    if (V != detail::FlatMap64::kEmpty)
      return &*slotAt(V);
    if (Base) {
      uint32_t BV = Base->StructIndex.findIf(K, Match);
      if (BV != detail::FlatMap64::kEmpty)
        return &resolveBaseHit(BV);
    }
    return nullptr;
  }
  uint64_t H = (static_cast<uint64_t>(PredId) << 32) ^ Call.hash();
  ++Probes; // index consultation (counted on hits and misses alike)
  bool First = true;
  auto Scan = [&](const std::vector<uint32_t> &Bucket) -> int64_t {
    for (uint32_t Pos : Bucket) {
      if (!First)
        ++Probes;
      First = false;
      const ETEntry &E = *slotAt(Pos);
      if (E.PredId == PredId && E.Call == Call)
        return Pos;
    }
    return -1;
  };
  if (auto It = Index.find(H); It != Index.end())
    if (int64_t Pos = Scan(It->second); Pos >= 0)
      return &*slotAt(static_cast<size_t>(Pos));
  if (Base)
    if (auto It = Base->Index.find(H); It != Base->Index.end())
      if (int64_t Pos = Scan(It->second); Pos >= 0)
        return &resolveBaseHit(static_cast<size_t>(Pos));
  return nullptr;
}

const ETEntry *ExtensionTable::findExisting(int32_t PredId,
                                            const Pattern &Call) const {
  if (WhichImpl == Impl::LinearList) {
    for (size_t Pos = 0; Pos != Count; ++Pos) {
      const ETEntry &E = *slotAt(Pos);
      if (E.PredId == PredId && E.Call == Call)
        return &E;
    }
    return nullptr;
  }
  if (Interner) {
    uint64_t K = structKey(PredId, Call.hash());
    auto Match = [&](uint32_t Pos) {
      const ETEntry &E = *slotAt(Pos);
      return E.PredId == PredId && E.Call == Call;
    };
    uint32_t V = StructIndex.findIf(K, Match);
    if (V == detail::FlatMap64::kEmpty && Base)
      V = Base->StructIndex.findIf(K, Match);
    return V == detail::FlatMap64::kEmpty ? nullptr : slotAt(V);
  }
  uint64_t H = (static_cast<uint64_t>(PredId) << 32) ^ Call.hash();
  for (const ExtensionTable *T : {this, Base}) {
    if (!T)
      continue;
    auto It = T->Index.find(H);
    if (It == T->Index.end())
      continue;
    for (uint32_t Pos : It->second) {
      const ETEntry &E = *slotAt(Pos);
      if (E.PredId == PredId && E.Call == Call)
        return &E;
    }
  }
  return nullptr;
}

ETEntry &ExtensionTable::findOrCreate(int32_t PredId, const Pattern &Call,
                                      bool &Created) {
  if (ETEntry *E = find(PredId, Call)) {
    Created = false;
    return *E;
  }
  Created = true;
  ETEntry &E = appendEntry();
  E.PredId = PredId;
  E.Call = Call;
  if (Interner)
    E.CallId = Interner->intern(Call);
  if (WhichImpl == Impl::HashMap) {
    uint64_t H = Call.hash();
    uint32_t Pos = static_cast<uint32_t>(E.Idx);
    if (Interner) {
      IdIndex.insert(idKey(PredId, E.CallId), Pos);
      StructIndex.insert(structKey(PredId, H), Pos);
    } else {
      Index[(static_cast<uint64_t>(PredId) << 32) ^ H].push_back(Pos);
    }
  }
  return E;
}

ETEntry &ExtensionTable::findOrCreateByPattern(int32_t PredId,
                                               const Pattern &Call,
                                               bool &Created) {
  assert(Interner && "fused lookup requires an interner");
  if (WhichImpl == Impl::LinearList) {
    // Ablation combination: same scan (and probe accounting) as the
    // structural path; only a miss pays for interning.
    if (ETEntry *E = find(PredId, Call)) {
      Created = false;
      return *E;
    }
  } else {
    uint64_t K = structKey(PredId, Call.hash());
    ++Probes; // index consultation (counted on hits and misses alike)
    bool First = true;
    auto Match = [&](uint32_t Pos) {
      if (!First)
        ++Probes;
      First = false;
      const ETEntry &E = *slotAt(Pos);
      return E.PredId == PredId && E.Call == Call;
    };
    uint32_t V = StructIndex.findIf(K, Match);
    if (V != detail::FlatMap64::kEmpty) {
      Created = false;
      return *slotAt(V);
    }
    if (Base) {
      uint32_t BV = Base->StructIndex.findIf(K, Match);
      if (BV != detail::FlatMap64::kEmpty) {
        Created = false;
        return resolveBaseHit(BV);
      }
    }
  }
  Created = true;
  ETEntry &E = appendEntry();
  E.PredId = PredId;
  E.Call = Call;
  E.CallId = Interner->intern(Call);
  if (WhichImpl == Impl::HashMap) {
    uint32_t Pos = static_cast<uint32_t>(E.Idx);
    IdIndex.insert(idKey(PredId, E.CallId), Pos);
    StructIndex.insert(structKey(PredId, Call.hash()), Pos);
  }
  return E;
}

ETEntry *ExtensionTable::find(int32_t PredId, PatternId CallId) {
  assert(Interner && "id-keyed lookup requires an interner");
  assert(!Base && "id-keyed lookup is not defined on overlays");
  if (WhichImpl == Impl::LinearList) {
    for (ETEntry &E : Owned) {
      ++Probes;
      if (E.PredId == PredId && E.CallId == CallId)
        return &E;
    }
    return nullptr;
  }
  ++Probes;
  uint32_t V = IdIndex.lookup(idKey(PredId, CallId));
  return V == detail::FlatMap64::kEmpty ? nullptr : slotAt(V);
}

ETEntry &ExtensionTable::findOrCreate(int32_t PredId, PatternId CallId,
                                      bool &Created) {
  if (ETEntry *E = find(PredId, CallId)) {
    Created = false;
    return *E;
  }
  Created = true;
  ETEntry &E = appendEntry(); // find() asserted !Base
  E.PredId = PredId;
  E.CallId = CallId;
  E.Call = Interner->pattern(CallId);
  if (WhichImpl == Impl::HashMap) {
    uint32_t Pos = static_cast<uint32_t>(E.Idx);
    IdIndex.insert(idKey(PredId, CallId), Pos);
    StructIndex.insert(structKey(PredId, E.Call.hash()), Pos);
  }
  return E;
}

void ExtensionTable::attachBase(const ExtensionTable &B) {
  assert(Owned.empty() && Count == 0 && "attachBase requires an empty overlay");
  assert(B.WhichImpl == WhichImpl && "overlay must mirror the base impl");
  assert(!B.Base && "bases do not stack");
  assert(&B != this);
  Base = &B;
  resetOverlay();
}

void ExtensionTable::resetOverlay() {
  assert(Base && "resetOverlay is an overlay operation");
  // Re-share the base's pages wholesale: any page this overlay privatized
  // last round is dropped here (its shared_ptr replaced by the base's),
  // and entries the base appended since last round come into view. This is
  // the O(pages) snapshot the speculation loop pays per run.
  Pages.assign(Base->Pages.begin(), Base->Pages.end());
  CreatedSlots.clear();
  Owned.clear();
  Index.clear();
  IdIndex.clear();
  StructIndex.clear();
  TouchLog.clear();
  BaseSize = Base->Count;
  Count = BaseSize;
  ++TouchGen;
  if (TouchMark.size() < BaseSize) {
    TouchMark.resize(BaseSize, 0);
    PrivMark.resize(BaseSize, 0);
  }
}
