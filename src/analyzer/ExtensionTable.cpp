//===- analyzer/ExtensionTable.cpp ----------------------------------------===//

#include "analyzer/ExtensionTable.h"

using namespace awam;

ETEntry *ExtensionTable::find(int32_t PredId, const Pattern &Call) {
  if (WhichImpl == Impl::LinearList) {
    for (ETEntry &E : Entries) {
      ++Probes;
      if (E.PredId == PredId && E.Call == Call)
        return &E;
    }
    return nullptr;
  }
  uint64_t H = (static_cast<uint64_t>(PredId) << 32) ^ Call.hash();
  auto It = Index.find(H);
  if (It == Index.end())
    return nullptr;
  for (ETEntry *E : It->second) {
    ++Probes;
    if (E->PredId == PredId && E->Call == Call)
      return E;
  }
  return nullptr;
}

ETEntry &ExtensionTable::findOrCreate(int32_t PredId, const Pattern &Call,
                                      bool &Created) {
  if (ETEntry *E = find(PredId, Call)) {
    Created = false;
    return *E;
  }
  Created = true;
  ETEntry &E = Entries.emplace_back();
  E.PredId = PredId;
  E.Call = Call;
  if (WhichImpl == Impl::HashMap) {
    uint64_t H = (static_cast<uint64_t>(PredId) << 32) ^ Call.hash();
    Index[H].push_back(&E);
  }
  return E;
}
