//===- analyzer/ExtensionTable.cpp ----------------------------------------===//

#include "analyzer/ExtensionTable.h"

#include <cassert>

using namespace awam;

ETEntry *ExtensionTable::find(int32_t PredId, const Pattern &Call) {
  if (WhichImpl == Impl::LinearList) {
    for (ETEntry &E : Entries) {
      ++Probes;
      if (E.PredId == PredId && E.Call == Call)
        return &E;
    }
    return nullptr;
  }
  if (Interner) {
    // Interned tables index structurally through StructIndex only (one
    // flat map instead of two parallel indexes).
    ++Probes; // index consultation (counted on hits and misses alike)
    bool First = true;
    uint32_t V =
        StructIndex.findIf(structKey(PredId, Call.hash()), [&](uint32_t Idx) {
          if (!First)
            ++Probes;
          First = false;
          const ETEntry &E = Entries[Idx];
          return E.PredId == PredId && E.Call == Call;
        });
    return V == detail::FlatMap64::kEmpty ? nullptr : &Entries[V];
  }
  uint64_t H = (static_cast<uint64_t>(PredId) << 32) ^ Call.hash();
  ++Probes; // index consultation (counted on hits and misses alike)
  auto It = Index.find(H);
  if (It == Index.end())
    return nullptr;
  bool First = true;
  for (ETEntry *E : It->second) {
    if (!First)
      ++Probes;
    First = false;
    if (E->PredId == PredId && E->Call == Call)
      return E;
  }
  return nullptr;
}

ETEntry &ExtensionTable::findOrCreate(int32_t PredId, const Pattern &Call,
                                      bool &Created) {
  if (ETEntry *E = find(PredId, Call)) {
    Created = false;
    return *E;
  }
  Created = true;
  ETEntry &E = Entries.emplace_back();
  E.Idx = static_cast<int32_t>(Entries.size()) - 1;
  E.PredId = PredId;
  E.Call = Call;
  if (Interner)
    E.CallId = Interner->intern(Call);
  if (WhichImpl == Impl::HashMap) {
    uint64_t H = Call.hash();
    if (Interner) {
      IdIndex.insert(idKey(PredId, E.CallId), static_cast<uint32_t>(E.Idx));
      StructIndex.insert(structKey(PredId, H), static_cast<uint32_t>(E.Idx));
    } else {
      Index[(static_cast<uint64_t>(PredId) << 32) ^ H].push_back(&E);
    }
  }
  return E;
}

ETEntry &ExtensionTable::findOrCreateByPattern(int32_t PredId,
                                               const Pattern &Call,
                                               bool &Created) {
  assert(Interner && "fused lookup requires an interner");
  if (WhichImpl == Impl::LinearList) {
    // Ablation combination: same scan (and probe accounting) as the
    // structural path; only a miss pays for interning.
    if (ETEntry *E = find(PredId, Call)) {
      Created = false;
      return *E;
    }
  } else {
    uint64_t K = structKey(PredId, Call.hash());
    ++Probes; // index consultation (counted on hits and misses alike)
    bool First = true;
    uint32_t V = StructIndex.findIf(K, [&](uint32_t Idx) {
      if (!First)
        ++Probes;
      First = false;
      const ETEntry &E = Entries[Idx];
      return E.PredId == PredId && E.Call == Call;
    });
    if (V != detail::FlatMap64::kEmpty) {
      Created = false;
      return Entries[V];
    }
  }
  Created = true;
  ETEntry &E = Entries.emplace_back();
  E.Idx = static_cast<int32_t>(Entries.size()) - 1;
  E.PredId = PredId;
  E.Call = Call;
  E.CallId = Interner->intern(Call);
  if (WhichImpl == Impl::HashMap) {
    uint64_t H = Call.hash();
    IdIndex.insert(idKey(PredId, E.CallId), static_cast<uint32_t>(E.Idx));
    StructIndex.insert(structKey(PredId, H), static_cast<uint32_t>(E.Idx));
  }
  return E;
}

ETEntry *ExtensionTable::find(int32_t PredId, PatternId CallId) {
  assert(Interner && "id-keyed lookup requires an interner");
  if (WhichImpl == Impl::LinearList) {
    for (ETEntry &E : Entries) {
      ++Probes;
      if (E.PredId == PredId && E.CallId == CallId)
        return &E;
    }
    return nullptr;
  }
  ++Probes;
  uint32_t V = IdIndex.lookup(idKey(PredId, CallId));
  return V == detail::FlatMap64::kEmpty ? nullptr : &Entries[V];
}

ETEntry &ExtensionTable::findOrCreate(int32_t PredId, PatternId CallId,
                                      bool &Created) {
  if (ETEntry *E = find(PredId, CallId)) {
    Created = false;
    return *E;
  }
  Created = true;
  ETEntry &E = Entries.emplace_back();
  E.Idx = static_cast<int32_t>(Entries.size()) - 1;
  E.PredId = PredId;
  E.CallId = CallId;
  E.Call = Interner->pattern(CallId);
  if (WhichImpl == Impl::HashMap) {
    IdIndex.insert(idKey(PredId, CallId), static_cast<uint32_t>(E.Idx));
    StructIndex.insert(structKey(PredId, E.Call.hash()),
                       static_cast<uint32_t>(E.Idx));
  }
  return E;
}
