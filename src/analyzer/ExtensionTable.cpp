//===- analyzer/ExtensionTable.cpp ----------------------------------------===//

#include "analyzer/ExtensionTable.h"

#include <cassert>

using namespace awam;

// Index maps store deque *positions*. On ordinary tables position == Idx;
// overlays decouple them (shadows keep their base Idx, locally created
// entries get Idx values past the base size).

ETEntry *ExtensionTable::find(int32_t PredId, const Pattern &Call) {
  if (WhichImpl == Impl::LinearList) {
    for (ETEntry &E : Entries) {
      ++Probes;
      if (E.PredId == PredId && E.Call == Call)
        return &E;
    }
  } else if (Interner) {
    // Interned tables index structurally through StructIndex only (one
    // flat map instead of two parallel indexes).
    ++Probes; // index consultation (counted on hits and misses alike)
    bool First = true;
    uint32_t V =
        StructIndex.findIf(structKey(PredId, Call.hash()), [&](uint32_t Pos) {
          if (!First)
            ++Probes;
          First = false;
          const ETEntry &E = Entries[Pos];
          return E.PredId == PredId && E.Call == Call;
        });
    if (V != detail::FlatMap64::kEmpty)
      return &Entries[V];
  } else {
    uint64_t H = (static_cast<uint64_t>(PredId) << 32) ^ Call.hash();
    ++Probes; // index consultation (counted on hits and misses alike)
    auto It = Index.find(H);
    if (It != Index.end()) {
      bool First = true;
      for (ETEntry *E : It->second) {
        if (!First)
          ++Probes;
        First = false;
        if (E->PredId == PredId && E->Call == Call)
          return E;
      }
    }
  }
  // Local miss; an overlay consults its frozen base and shadows any hit.
  if (Base)
    if (const ETEntry *BE = Base->findExisting(PredId, Call))
      return &installShadow(*BE);
  return nullptr;
}

const ETEntry *ExtensionTable::findExisting(int32_t PredId,
                                            const Pattern &Call) const {
  if (WhichImpl == Impl::LinearList) {
    for (const ETEntry &E : Entries)
      if (E.PredId == PredId && E.Call == Call)
        return &E;
    return nullptr;
  }
  if (Interner) {
    uint32_t V =
        StructIndex.findIf(structKey(PredId, Call.hash()), [&](uint32_t Pos) {
          const ETEntry &E = Entries[Pos];
          return E.PredId == PredId && E.Call == Call;
        });
    return V == detail::FlatMap64::kEmpty ? nullptr : &Entries[V];
  }
  auto It = Index.find((static_cast<uint64_t>(PredId) << 32) ^ Call.hash());
  if (It == Index.end())
    return nullptr;
  for (const ETEntry *E : It->second)
    if (E->PredId == PredId && E->Call == Call)
      return E;
  return nullptr;
}

ETEntry &ExtensionTable::findOrCreate(int32_t PredId, const Pattern &Call,
                                      bool &Created) {
  if (ETEntry *E = find(PredId, Call)) {
    Created = false;
    return *E;
  }
  Created = true;
  ETEntry &E = Entries.emplace_back();
  uint32_t Pos = static_cast<uint32_t>(Entries.size()) - 1;
  E.Idx = Base ? static_cast<int32_t>(BaseSize + NewCount++)
               : static_cast<int32_t>(Pos);
  E.PredId = PredId;
  E.Call = Call;
  if (Interner)
    E.CallId = Interner->intern(Call);
  if (WhichImpl == Impl::HashMap) {
    uint64_t H = Call.hash();
    if (Interner) {
      IdIndex.insert(idKey(PredId, E.CallId), Pos);
      StructIndex.insert(structKey(PredId, H), Pos);
    } else {
      Index[(static_cast<uint64_t>(PredId) << 32) ^ H].push_back(&E);
    }
  }
  return E;
}

ETEntry &ExtensionTable::findOrCreateByPattern(int32_t PredId,
                                               const Pattern &Call,
                                               bool &Created) {
  assert(Interner && "fused lookup requires an interner");
  if (WhichImpl == Impl::LinearList) {
    // Ablation combination: same scan (and probe accounting) as the
    // structural path; only a miss pays for interning.
    if (ETEntry *E = find(PredId, Call)) {
      Created = false;
      return *E;
    }
  } else {
    uint64_t K = structKey(PredId, Call.hash());
    ++Probes; // index consultation (counted on hits and misses alike)
    bool First = true;
    uint32_t V = StructIndex.findIf(K, [&](uint32_t Pos) {
      if (!First)
        ++Probes;
      First = false;
      const ETEntry &E = Entries[Pos];
      return E.PredId == PredId && E.Call == Call;
    });
    if (V != detail::FlatMap64::kEmpty) {
      Created = false;
      return Entries[V];
    }
    if (Base)
      if (const ETEntry *BE = Base->findExisting(PredId, Call)) {
        Created = false;
        return installShadow(*BE);
      }
  }
  Created = true;
  ETEntry &E = Entries.emplace_back();
  uint32_t Pos = static_cast<uint32_t>(Entries.size()) - 1;
  E.Idx = Base ? static_cast<int32_t>(BaseSize + NewCount++)
               : static_cast<int32_t>(Pos);
  E.PredId = PredId;
  E.Call = Call;
  E.CallId = Interner->intern(Call);
  if (WhichImpl == Impl::HashMap) {
    uint64_t H = Call.hash();
    IdIndex.insert(idKey(PredId, E.CallId), Pos);
    StructIndex.insert(structKey(PredId, H), Pos);
  }
  return E;
}

ETEntry *ExtensionTable::find(int32_t PredId, PatternId CallId) {
  assert(Interner && "id-keyed lookup requires an interner");
  assert(!Base && "id-keyed lookup is not defined across interner spaces");
  if (WhichImpl == Impl::LinearList) {
    for (ETEntry &E : Entries) {
      ++Probes;
      if (E.PredId == PredId && E.CallId == CallId)
        return &E;
    }
    return nullptr;
  }
  ++Probes;
  uint32_t V = IdIndex.lookup(idKey(PredId, CallId));
  return V == detail::FlatMap64::kEmpty ? nullptr : &Entries[V];
}

ETEntry &ExtensionTable::findOrCreate(int32_t PredId, PatternId CallId,
                                      bool &Created) {
  if (ETEntry *E = find(PredId, CallId)) {
    Created = false;
    return *E;
  }
  Created = true;
  ETEntry &E = Entries.emplace_back();
  uint32_t Pos = static_cast<uint32_t>(Entries.size()) - 1;
  E.Idx = static_cast<int32_t>(Pos); // find() asserted !Base
  E.PredId = PredId;
  E.CallId = CallId;
  E.Call = Interner->pattern(CallId);
  if (WhichImpl == Impl::HashMap) {
    IdIndex.insert(idKey(PredId, CallId), Pos);
    StructIndex.insert(structKey(PredId, E.Call.hash()), Pos);
  }
  return E;
}

void ExtensionTable::attachBase(const ExtensionTable &B) {
  assert(Entries.empty() && "attachBase requires an empty overlay");
  assert(B.WhichImpl == WhichImpl && "overlay must mirror the base impl");
  assert(&B != this);
  Base = &B;
  BaseSize = B.size();
}

void ExtensionTable::resetOverlay() {
  assert(Base && "resetOverlay is an overlay operation");
  Entries.clear();
  Index.clear();
  IdIndex.clear();
  StructIndex.clear();
  TouchLog.clear();
  NewCount = 0;
  BaseSize = Base->size();
}

ETEntry &ExtensionTable::installShadow(const ETEntry &BaseE) {
  TouchLog.push_back({BaseE.Idx, BaseE.SuccessVersion, BaseE.EverExplored});
  Entries.push_back(BaseE);
  ETEntry &E = Entries.back();
  // The base's pattern ids belong to the base interner's id space; remap
  // them into the overlay's own interner (base patterns are canonical, so
  // plain interning suffices).
  if (Interner) {
    E.CallId = Interner->intern(E.Call);
    E.SuccessId =
        E.Success ? Interner->intern(*E.Success) : kInvalidPatternId;
  } else {
    E.CallId = kInvalidPatternId;
    E.SuccessId = kInvalidPatternId;
  }
  uint32_t Pos = static_cast<uint32_t>(Entries.size()) - 1;
  if (WhichImpl == Impl::HashMap) {
    uint64_t H = E.Call.hash();
    if (Interner) {
      IdIndex.insert(idKey(E.PredId, E.CallId), Pos);
      StructIndex.insert(structKey(E.PredId, H), Pos);
    } else {
      Index[(static_cast<uint64_t>(E.PredId) << 32) ^ H].push_back(&E);
    }
  }
  return E;
}

ETEntry &ExtensionTable::shadowForBase(int32_t BaseIdx) {
  assert(Base && BaseIdx >= 0 && static_cast<size_t>(BaseIdx) < BaseSize);
  const ETEntry &BE = Base->Entries[BaseIdx];
  if (const ETEntry *E = findExisting(BE.PredId, BE.Call))
    return const_cast<ETEntry &>(*E);
  return installShadow(BE);
}
