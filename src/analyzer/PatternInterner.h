//===- analyzer/PatternInterner.h - Hash-consed patterns --------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consing of canonical Patterns: every structurally distinct pattern
/// is stored exactly once and addressed by a dense PatternId, so the
/// fixpoint loop compares, hashes and memoizes abstract descriptions by
/// integer id instead of deep value comparison. On top of interning, the
/// lattice operations lub and leq are memoized on id pairs, and a pooled
/// scratch Store replaces the per-call store construction the paper's
/// instantiate/lub/re-canonicalize dance would otherwise pay.
///
/// The abstract domain is finite (term-depth restriction, Section 3), so
/// the table of distinct patterns per analysis is small and the memo
/// caches converge quickly: at the fixpoint every lub the loop performs is
/// a cache hit.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_ANALYZER_PATTERNINTERNER_H
#define AWAM_ANALYZER_PATTERNINTERNER_H

#include "analyzer/Pattern.h"

#include <vector>

namespace awam {

class Domain;

/// Dense identifier of an interned pattern. Two interned patterns are
/// structurally equal iff their ids are equal.
using PatternId = uint32_t;

/// Sentinel for "no pattern".
inline constexpr PatternId kInvalidPatternId = 0xFFFFFFFFu;

namespace detail {

/// Minimal open-addressing uint64 -> uint32 hash map for the interner and
/// extension-table hot paths: linear probing, power-of-2 capacity, no
/// deletion, one flat allocation. The value 0xFFFFFFFF marks an empty
/// slot and is never stored. Duplicate keys are permitted (the pattern
/// index keeps hash collisions in separate slots); findIf visits every
/// entry with the given key in probe order.
class FlatMap64 {
public:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  /// First value stored under \p Key, or kEmpty.
  uint32_t lookup(uint64_t Key) const {
    return findIf(Key, [](uint32_t) { return true; });
  }

  /// First value stored under \p Key accepted by \p Match, or kEmpty.
  template <typename F> uint32_t findIf(uint64_t Key, F &&Match) const {
    if (Vals.empty())
      return kEmpty;
    size_t Mask = Vals.size() - 1;
    for (size_t I = mix(Key) & Mask;; I = (I + 1) & Mask) {
      if (Vals[I] == kEmpty)
        return kEmpty;
      if (Keys[I] == Key && Match(Vals[I]))
        return Vals[I];
    }
  }

  /// Inserts (\p Key, \p Val); does not overwrite existing entries with
  /// the same key (a new slot is used).
  void insert(uint64_t Key, uint32_t Val) {
    if (10 * (Count + 1) >= 7 * Vals.size())
      grow();
    size_t Mask = Vals.size() - 1;
    size_t I = mix(Key) & Mask;
    while (Vals[I] != kEmpty)
      I = (I + 1) & Mask;
    Keys[I] = Key;
    Vals[I] = Val;
    ++Count;
  }

  size_t size() const { return Count; }

  /// Heap bytes held by the two flat arrays (eviction accounting).
  size_t bytesUsed() const {
    return Keys.capacity() * sizeof(uint64_t) +
           Vals.capacity() * sizeof(uint32_t);
  }

  /// Drops every entry, releasing the storage (overlay tables rebuild
  /// their indexes from scratch each speculation).
  void clear() {
    Keys.clear();
    Vals.clear();
    Count = 0;
  }

private:
  static size_t mix(uint64_t K) {
    // splitmix64 finalizer.
    K += 0x9e3779b97f4a7c15ull;
    K = (K ^ (K >> 30)) * 0xbf58476d1ce4e5b9ull;
    K = (K ^ (K >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(K ^ (K >> 31));
  }

  void grow() {
    size_t NewCap = Vals.empty() ? 64 : Vals.size() * 2;
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<uint32_t> OldVals = std::move(Vals);
    Keys.assign(NewCap, 0);
    Vals.assign(NewCap, kEmpty);
    size_t Mask = NewCap - 1;
    for (size_t I = 0; I != OldVals.size(); ++I) {
      if (OldVals[I] == kEmpty)
        continue;
      size_t J = mix(OldKeys[I]) & Mask;
      while (Vals[J] != kEmpty)
        J = (J + 1) & Mask;
      Keys[J] = OldKeys[I];
      Vals[J] = OldVals[I];
    }
  }

  std::vector<uint64_t> Keys;
  std::vector<uint32_t> Vals;
  size_t Count = 0;
};

} // namespace detail

/// Hit/miss counters for the interner and its memo caches (reported
/// through AnalysisResult::Counters).
struct InternerStats {
  uint64_t InternHits = 0;
  uint64_t InternMisses = 0; ///< == number of distinct patterns created
  uint64_t LubCacheHits = 0;
  uint64_t LubCacheMisses = 0;
  uint64_t LeqCacheHits = 0;
  uint64_t LeqCacheMisses = 0;
};

/// The hash-consing table plus memoized lattice operations. One interner
/// serves one analysis run (ids are only meaningful relative to their
/// interner); the depth limit is fixed at construction because lub results
/// depend on it.
///
/// Overlay mode (the parallel driver's workers): an interner attached to a
/// frozen base interner shares the base's id space read-only — ids below
/// baseCount() resolve through the base's arenas and memo caches — and
/// appends only locally new patterns past it. A base id is therefore
/// directly meaningful to the base's owner (the master thread), so
/// speculative summary growth whose result id is below baseCount() commits
/// without rematerializing or re-interning the pattern. resetOverlay drops
/// the local extension and re-snapshots baseCount; the base must not be
/// mutated while the overlay reads it (guaranteed temporally by the
/// speculation protocol, like the table overlay).
class PatternInterner {
public:
  /// \p Dom routes the lattice operations (lub misses, entry
  /// normalization) through an abstract domain; null keeps the default
  /// (modes) inline code — byte-identical to routing through the default
  /// domain, whose hooks are that code.
  explicit PatternInterner(int DepthLimit = kDefaultDepthLimit,
                           const Domain *Dom = nullptr)
      : DepthLimit(DepthLimit), Dom(Dom) {}

  /// The domain this interner's lattice operations run under (null =
  /// default inline path).
  const Domain *domain() const { return Dom; }

  /// Turns this (empty) interner into an overlay of \p B (same depth
  /// limit required — lub results depend on it).
  void attachBase(const PatternInterner &B);

  /// Drops every locally interned pattern and memo entry and re-snapshots
  /// the base id space (which may have grown while the overlay was
  /// dormant). Local ids from before the reset are invalidated.
  void resetOverlay();

  /// First id past the shared base id space (0 on ordinary interners):
  /// ids below are the base's and valid across the overlay boundary.
  PatternId baseCount() const { return BaseCount; }

  /// Interns \p P (which must already be in canonical first-visit-order
  /// form, as produced by canonicalize). A miss appends the pattern to the
  /// shared arenas (amortized allocation-free), so callers can intern a
  /// pooled scratch pattern freely.
  PatternId intern(const PatternRef &P);

  /// Interns an arbitrary (possibly hand-built, non-canonical) pattern by
  /// instantiating it into the scratch store and re-canonicalizing first.
  /// Used for entry patterns, which come from makeEntryPattern /
  /// parseEntrySpec rather than from canonicalize.
  PatternId internNormalized(const Pattern &P);

  /// A view of the interned pattern for \p Id. Views are transient:
  /// subsequent interning (including lub misses) can reallocate the
  /// arenas, so materialize with Pattern(ref) before holding on to one.
  PatternRef pattern(PatternId Id) const {
    if (Base && Id < BaseCount)
      return Base->pattern(Id);
    const Rec &R = Recs[Id - BaseCount];
    return PatternRef(ArenaNodes.data() + R.NodeB, R.NodeN,
                      ArenaChildren.data() + R.ChildB,
                      ArenaRoots.data() + R.RootB, R.RootN);
  }

  /// Number of distinct patterns interned so far (shared base ids
  /// included on overlays).
  size_t size() const { return BaseCount + Recs.size(); }

  /// Approximate heap bytes this interner holds: the three pattern arenas,
  /// the record table, and the hash/memo maps. Shared base storage is the
  /// base's to count, not the overlay's. This is the interner term of the
  /// store eviction accounting (analyzer/Server.h).
  size_t bytesUsed() const {
    return Recs.capacity() * sizeof(Rec) +
           ArenaNodes.capacity() * sizeof(PatNode) +
           ArenaChildren.capacity() * sizeof(int32_t) +
           ArenaRoots.capacity() * sizeof(int32_t) + Buckets.bytesUsed() +
           LubMemo.bytesUsed() + LeqMemo.bytesUsed();
  }

  /// Memoized least upper bound. The underlying computation is
  /// lubPatterns; the memo key is the (commutative) id pair.
  PatternId lub(PatternId A, PatternId B);

  /// Memoized partial order: gamma(A) subset of gamma(B), decided as
  /// lub(A, B) == B. Keyed on the ordered id pair (leq is not symmetric).
  bool leq(PatternId A, PatternId B);

  const InternerStats &stats() const { return Stats; }

private:
  /// One interned pattern: slices of the three arenas below. Node
  /// ChildBegin indices are relative to the pattern's own ChildB base,
  /// exactly as in a standalone Pattern.
  struct Rec {
    uint32_t NodeB, NodeN, ChildB, ChildN, RootB, RootN;
  };

  int DepthLimit;
  /// Lattice-operation provider; null = the default domain's inline code.
  const Domain *Dom = nullptr;
  /// Overlay mode (see class comment): the shared read-only base and the
  /// size of its id space at the last resetOverlay. Local Recs hold ids
  /// BaseCount, BaseCount+1, ...
  const PatternInterner *Base = nullptr;
  PatternId BaseCount = 0;
  /// Arena-backed pattern storage: all interned patterns' nodes, child
  /// slices and roots live in three shared vectors, so a miss appends
  /// (amortized no allocation) instead of copying three vectors per
  /// pattern.
  std::vector<Rec> Recs;
  std::vector<PatNode> ArenaNodes;
  std::vector<int32_t> ArenaChildren;
  std::vector<int32_t> ArenaRoots;
  /// Structural hash -> candidate ids (collisions resolved by deep
  /// comparison, exactly once per distinct pattern).
  detail::FlatMap64 Buckets;
  detail::FlatMap64 LubMemo; ///< unordered id pair -> result id
  detail::FlatMap64 LeqMemo; ///< ordered id pair -> 0/1
  Store Scratch; ///< pooled working store for lub/normalize
  // Pooled scratch for lub misses and normalization (one canonicalization
  // context, one result pattern, instantiate working vectors).
  CanonicalizeContext Ctx;
  Pattern PatBuf;
  std::vector<int64_t> CellOfBuf;
  std::vector<int64_t> RootsA;
  std::vector<int64_t> RootsB;
  std::vector<Cell> CellArgs;
  InternerStats Stats;
};

} // namespace awam

#endif // AWAM_ANALYZER_PATTERNINTERNER_H
