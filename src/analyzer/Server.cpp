//===- analyzer/Server.cpp - Concurrent multi-tenant analysis service -----===//

#include "analyzer/Server.h"

#include "analyzer/Domain.h"
#include "analyzer/Specialize.h"
#include "compiler/ModuleLink.h"
#include "compiler/ProgramCompiler.h"
#include "compiler/Specializer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace awam;

namespace {

std::string trim(std::string_view S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string_view::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return std::string(S.substr(B, E - B + 1));
}

/// Parses a NAME/ARITY operand (the analyze_file --edit contract).
bool parseSig(std::string_view S, PredSig &Out) {
  size_t Slash = S.rfind('/');
  if (Slash == std::string_view::npos || Slash == 0)
    return false;
  int Arity = 0;
  for (char C : S.substr(Slash + 1)) {
    if (C < '0' || C > '9')
      return false;
    Arity = Arity * 10 + (C - '0');
  }
  if (Slash + 1 == S.size())
    return false;
  Out.Name = std::string(S.substr(0, Slash));
  Out.Arity = Arity;
  return true;
}

constexpr const char *kHelpText =
    "commands:\n"
    "  load MAIN [LIB]...  each operand a <file.pl> or bench:<name>; extra\n"
    "                      operands compile as separate library units and\n"
    "                      link with MAIN (identical to loading the\n"
    "                      concatenated source)\n"
    "  entry SPEC          e.g. entry qsort(glist, var, var)\n"
    "  batch SPEC; SPEC    several entries through the warm store\n"
    "  edit NAME/ARITY     incremental re-analysis after an edit\n"
    "  optimize [SPEC]     specialize the loaded module with the facts of\n"
    "                      SPEC (default: the last successful entry)\n"
    "  export TAG          serialize the store's summaries + replay traces\n"
    "                      into the in-memory bundle registry under TAG\n"
    "  import TAG          warm-start the store from bundle TAG (stale\n"
    "                      traces drop; answers stay byte-identical)\n"
    "  domain [NAME]       switch abstract domain (or show it)\n"
    "  modes               toggle mode report / pattern table\n"
    "  dump                canonical per-root store projection\n"
    "  stats               cumulative store statistics\n"
    "  help, quit\n";

} // namespace

/// One coalesced in-flight query: followers wait here for the leader's
/// response bytes.
struct AnalysisServer::Pending {
  std::mutex M;
  std::condition_variable CV;
  bool Ready = false;
  Response R;
};

/// One (module fingerprint, abstract domain) tenancy. The compile
/// artifacts (symbols, arena, program) live for the server's lifetime;
/// the analysis state (Session and its store) is what eviction drops and
/// a later touch re-warms.
struct AnalysisServer::StoreSlot {
  uint64_t Fp = 0;
  std::string DomainName;
  std::string Label; ///< operand of the first load (reuse messages cite it)
  /// The (label, source) units of the first load — one for a plain load,
  /// several for a linked one. Domain switches re-select from these.
  std::vector<std::pair<std::string, std::string>> Units;
  std::unique_ptr<SymbolTable> Syms;
  std::unique_ptr<TermArena> Arena;
  Result<CompiledProgram> Program = makeError("unloaded");

  /// Writer lock: drains and edits are exclusive, dump/deep-stats shared.
  std::shared_mutex Mu;
  /// Guards RespCache and InFlight only — never held across a drain.
  std::mutex CacheMu;
  /// Response bytes of successful entry/batch requests, keyed by (report
  /// toggle, verb, spec text). Valid until the next edit of this slot.
  std::unordered_map<std::string, std::string> RespCache;
  std::unordered_map<std::string, std::shared_ptr<Pending>> InFlight;

  /// Null while evicted (guarded by Mu).
  std::unique_ptr<AnalysisSession> Session;
  bool WasEvicted = false; ///< guarded by Mu
  std::atomic<bool> Live{false};
  std::atomic<uint64_t> LastTouch{0};
  std::atomic<uint64_t> Bytes{0};
  std::atomic<uint64_t> Hits{0}, Drains{0}, Evictions{0}, Rewarms{0};
};

struct AnalysisServer::QueuedReq {
  std::string Line;
  std::function<void(const Response &)> Done;
};

struct AnalysisServer::ClientState {
  int Id = 0;
  bool Open = true;   ///< guarded by GM
  bool Active = false; ///< a worker is on this client (guarded by GM)
  std::deque<QueuedReq> Queue; ///< guarded by GM
  // The fields below are only touched by the worker currently active on
  // this client (Active excludes a second one), so they need no lock.
  StoreSlot *Cursor = nullptr;
  std::string DomainName = "modes";
  bool ShowModes = false;
  /// Per-slot last successful entry spec — what this client's `edit`
  /// re-answers. Client-local on purpose: the *store's* notion of "most
  /// recent query" depends on request interleaving across clients.
  std::unordered_map<StoreSlot *, std::string> LastSpec;
};

AnalysisServer::AnalysisServer(Config C) : Cfg(std::move(C)) {
  int N = std::max(1, Cfg.Workers);
  Workers.reserve(static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

AnalysisServer::~AnalysisServer() {
  {
    std::lock_guard<std::mutex> L(GM);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

int AnalysisServer::openClient() {
  std::lock_guard<std::mutex> L(GM);
  int Id = NextClient++;
  auto CS = std::make_unique<ClientState>();
  CS->Id = Id;
  Clients.emplace(Id, std::move(CS));
  return Id;
}

void AnalysisServer::closeClient(int Client) {
  std::lock_guard<std::mutex> L(GM);
  auto It = Clients.find(Client);
  if (It != Clients.end())
    It->second->Open = false;
}

void AnalysisServer::submit(int Client, std::string Line,
                            std::function<void(const Response &)> Done) {
  std::unique_lock<std::mutex> L(GM);
  auto It = Clients.find(Client);
  if (It == Clients.end() || !It->second->Open || Stopping) {
    L.unlock();
    if (Done) {
      Response R;
      R.Err = "unknown client\n";
      Done(R);
    }
    return;
  }
  ClientState &CS = *It->second;
  CS.Queue.push_back(QueuedReq{std::move(Line), std::move(Done)});
  if (!CS.Active) {
    CS.Active = true;
    Ready.push_back(Client);
    L.unlock();
    WorkCV.notify_one();
  }
}

AnalysisServer::Response AnalysisServer::execute(int Client,
                                                 std::string_view Line) {
  struct Waiter {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    Response R;
  };
  auto W = std::make_shared<Waiter>();
  submit(Client, std::string(Line), [W](const Response &R) {
    {
      std::lock_guard<std::mutex> L(W->M);
      W->R = R;
      W->Done = true;
    }
    W->CV.notify_one();
  });
  std::unique_lock<std::mutex> L(W->M);
  W->CV.wait(L, [&] { return W->Done; });
  return W->R;
}

void AnalysisServer::workerLoop() {
  std::unique_lock<std::mutex> L(GM);
  for (;;) {
    WorkCV.wait(L, [&] { return Stopping || !Ready.empty(); });
    if (Stopping)
      return;
    int Cid = Ready.front();
    Ready.pop_front();
    auto It = Clients.find(Cid);
    if (It == Clients.end())
      continue;
    ClientState &CS = *It->second;
    if (CS.Queue.empty()) {
      CS.Active = false;
      continue;
    }
    QueuedReq Req = std::move(CS.Queue.front());
    CS.Queue.pop_front();
    L.unlock();

    Response R;
    process(CS, Req.Line, R);
    ++NRequests;
    if (Req.Done)
      Req.Done(R);

    L.lock();
    if (!CS.Queue.empty()) {
      // Re-queue at the back: round-robin fairness between clients.
      Ready.push_back(Cid);
      WorkCV.notify_one();
    } else {
      CS.Active = false;
    }
  }
}

void AnalysisServer::process(ClientState &CS, const std::string &Line,
                             Response &R) {
  std::string Cmd = trim(Line);
  if (Cmd.empty() || Cmd[0] == '#')
    return;
  size_t Sp = Cmd.find(' ');
  std::string Verb = Cmd.substr(0, Sp);
  std::string Rest =
      Sp == std::string::npos ? "" : trim(Cmd.substr(Sp + 1));

  if (Verb == "quit" || Verb == "exit") {
    R.Quit = true;
    return;
  }
  if (Verb == "help") {
    R.Err = kHelpText;
    return;
  }
  if (Verb == "modes") {
    CS.ShowModes = !CS.ShowModes;
    R.Err = std::string("report: ") + (CS.ShowModes ? "modes" : "patterns") +
            "\n";
    return;
  }
  if (Verb == "load") {
    doLoad(CS, Rest, R);
    return;
  }
  if (Verb == "domain") {
    if (Rest.empty()) {
      R.Err = "domain: " + CS.DomainName +
              " (registered: " + registeredDomainNames() + ")\n";
      return;
    }
    Result<const Domain *> D = resolveDomain(Rest);
    if (!D) {
      R.Err = D.diag().str() + "\n";
      return;
    }
    CS.DomainName = Rest;
    R.Err = "domain: " + CS.DomainName + "\n";
    // Re-select the loaded program under the new domain (its per-domain
    // store stays warm across switches).
    if (CS.Cursor)
      selectStore(CS, CS.Cursor->Units, CS.Cursor->Label, R);
    return;
  }

  // Every remaining command needs a loaded program.
  if (!CS.Cursor) {
    R.Err = "no program loaded (try: load bench:qsort)\n";
    return;
  }

  if (Verb == "entry" || Verb == "batch") {
    doQuery(CS, Verb, Rest, R);
    return;
  }
  if (Verb == "edit") {
    doEdit(CS, Rest, R);
    return;
  }
  if (Verb == "optimize") {
    doOptimize(CS, Rest, R);
    return;
  }
  if (Verb == "export") {
    doExport(CS, Rest, R);
    return;
  }
  if (Verb == "import") {
    doImport(CS, Rest, R);
    return;
  }
  if (Verb == "dump") {
    doDump(CS, R);
    return;
  }
  if (Verb == "stats") {
    doStats(CS, R);
    return;
  }
  R.Err = "unknown command '" + Verb + "' (try: help)\n";
}

void AnalysisServer::doLoad(ClientState &CS, const std::string &Rest,
                            Response &R) {
  if (Rest.empty()) {
    R.Err = "load what? (load <file.pl> | load bench:<name>, extra "
            "operands are library units)\n";
    return;
  }
  // Whitespace-separated operands: the first is the main unit, the rest
  // are library units. Resolve each to source; the units link in library
  // order with the main unit last (its imports resolve against the
  // library exports).
  std::vector<std::string> Specs;
  {
    std::stringstream SS(Rest);
    std::string Part;
    while (SS >> Part)
      Specs.push_back(Part);
  }
  auto Resolve = [&](const std::string &Spec, std::string &Source) {
    if (Cfg.LoadSource) {
      std::string Err;
      if (!Cfg.LoadSource(Spec, Source, Err)) {
        R.Err = Err;
        return false;
      }
      return true;
    }
    std::ifstream In(Spec);
    if (!In) {
      R.Err = "cannot open " + Spec + "\n";
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    return true;
  };
  std::vector<std::pair<std::string, std::string>> Units;
  Units.reserve(Specs.size());
  for (size_t I = 1; I != Specs.size(); ++I) {
    std::string Source;
    if (!Resolve(Specs[I], Source))
      return;
    Units.emplace_back(Specs[I], std::move(Source));
  }
  std::string Main;
  if (!Resolve(Specs[0], Main))
    return;
  Units.emplace_back(Specs[0], std::move(Main));
  selectStore(CS, Units, Rest, R);
}

void AnalysisServer::selectStore(
    ClientState &CS,
    const std::vector<std::pair<std::string, std::string>> &Units,
    const std::string &Label, Response &R) {
  // Compile aside, lock-free: the slot key needs the compiled module's
  // fingerprint. A concurrent load of the same module costs a duplicate
  // compile whose result the loser drops — exactly the single-client
  // REPL's reuse semantics, just raced.
  auto Syms = std::make_unique<SymbolTable>();
  auto Arena = std::make_unique<TermArena>();
  Result<CompiledProgram> P = makeError("no units");
  if (Units.size() == 1) {
    P = compileSource(Units[0].second, *Syms, *Arena);
  } else if (!Units.empty()) {
    // Separate compilation + link. The compiled unit objects are
    // link-time scaffolding only: the linked module copies (and
    // relocates) everything it needs, so they die with this scope.
    std::vector<CompiledProgram> Compiled;
    Compiled.reserve(Units.size());
    for (const auto &[ULabel, USource] : Units) {
      Result<CompiledProgram> C = compileSource(USource, *Syms, *Arena);
      if (!C) {
        R.Err += "error: " + ULabel + ": " + C.diag().str() + "\n";
        return;
      }
      Compiled.push_back(C.take());
    }
    std::vector<ModuleUnit> In;
    In.reserve(Units.size());
    for (size_t I = 0; I != Units.size(); ++I)
      In.push_back({&Compiled[I], Units[I].first});
    Result<LinkedProgram> L = linkPrograms(In);
    if (!L) {
      R.Err += "link error: " + L.diag().str() + "\n";
      return;
    }
    for (const std::string &W : L->UnresolvedImports)
      R.Err += "warning: " + W + "\n";
    P = std::move(L->Program);
  }
  if (!P) {
    R.Err += "error: " + P.diag().str() + "\n";
    return;
  }
  std::pair<uint64_t, std::string> Key{P->Module->fingerprint(),
                                       CS.DomainName};
  std::lock_guard<std::mutex> L(GM);
  auto It = Slots.find(Key);
  if (It != Slots.end()) {
    CS.Cursor = It->second.get();
    R.Err += "reusing warm store for " + Label + " (loaded as " +
             CS.Cursor->Label + ", domain " + CS.DomainName + ")\n";
  } else {
    auto S = std::make_unique<StoreSlot>();
    S->Fp = Key.first;
    S->DomainName = CS.DomainName;
    S->Label = Label;
    S->Units = Units;
    S->Syms = std::move(Syms);
    S->Arena = std::move(Arena);
    S->Program = std::move(P);
    AnalyzerOptions O = Cfg.Options;
    O.Persistent = true;
    O.DomainName = CS.DomainName;
    S->Session = std::make_unique<AnalysisSession>(*S->Program, O);
    S->Live = true;
    CS.Cursor = S.get();
    Slots.emplace(std::move(Key), std::move(S));
    R.Err += "loaded " + Label + "\n";
  }
  CS.Cursor->LastTouch = ++TouchClock;
}

void AnalysisServer::ensureSession(StoreSlot &S) {
  if (S.Session)
    return;
  AnalyzerOptions O = Cfg.Options;
  O.Persistent = true;
  O.DomainName = S.DomainName;
  S.Session = std::make_unique<AnalysisSession>(*S.Program, O);
  S.Live = true;
  if (S.WasEvicted) {
    S.WasEvicted = false;
    ++S.Rewarms;
    ++NRewarms;
  }
}

void AnalysisServer::meterBytes(StoreSlot &S) {
  const AnalysisStore *St = S.Session ? S.Session->store() : nullptr;
  S.Bytes = St ? St->bytesUsed() : 0;
}

void AnalysisServer::doQuery(ClientState &CS, const std::string &Verb,
                             const std::string &Rest, Response &R) {
  StoreSlot &S = *CS.Cursor;
  std::vector<std::string> Specs;
  if (Verb == "entry") {
    if (Rest.empty()) {
      R.Err = "entry what? (entry qsort(glist, var, var))\n";
      return;
    }
  } else {
    std::stringstream SS(Rest);
    std::string Part;
    while (std::getline(SS, Part, ';')) {
      Part = trim(Part);
      if (!Part.empty())
        Specs.push_back(Part);
    }
    if (Specs.empty()) {
      R.Err = "batch what? (batch main; app(glist, var, var))\n";
      return;
    }
  }
  ++NQueries;
  // The spec this client's next `edit` re-answers (set on success below).
  const std::string &EditSpec = Verb == "entry" ? Rest : Specs.back();
  std::string Key =
      std::string(CS.ShowModes ? "m:" : "p:") + Verb + ":" + Rest;

  std::shared_ptr<Pending> P;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> CL(S.CacheMu);
    auto Hit = S.RespCache.find(Key);
    if (Hit != S.RespCache.end()) {
      ++S.Hits;
      ++NCacheHits;
      R.Out = Hit->second;
      S.LastTouch = ++TouchClock;
      CS.LastSpec[&S] = EditSpec;
      return;
    }
    auto In = S.InFlight.find(Key);
    if (In != S.InFlight.end()) {
      P = In->second;
      ++NCoalesced;
    } else {
      P = std::make_shared<Pending>();
      S.InFlight.emplace(Key, P);
      Leader = true;
    }
  }

  if (!Leader) {
    // Follower: the leader is by construction a worker already mid-request
    // on this key, so waiting here cannot deadlock the pool.
    std::unique_lock<std::mutex> PL(P->M);
    P->CV.wait(PL, [&] { return P->Ready; });
    R = P->R;
    if (R.Err.empty())
      CS.LastSpec[&S] = EditSpec;
    return;
  }

  {
    std::unique_lock<std::shared_mutex> SL(S.Mu);
    ensureSession(S);
    ++S.Drains;
    ++NDrains;
    if (Verb == "entry") {
      Result<AnalysisResult> A = S.Session->analyze(Rest);
      if (!A) {
        R.Err = "analysis error: " + A.diag().str() + "\n";
      } else {
        R.Out = CS.ShowModes ? formatModes(*A, *S.Syms)
                             : formatAnalysis(*A, *S.Syms);
        if (A->Dom)
          R.Out += A->Dom->formatFacts(*A, *S.Program);
      }
    } else {
      Result<std::vector<AnalysisResult>> B = S.Session->analyzeBatch(Specs);
      if (!B) {
        R.Err = "analysis error: " + B.diag().str() + "\n";
      } else {
        for (size_t I = 0; I != Specs.size(); ++I) {
          R.Out += "== entry " + Specs[I] + " ==\n";
          R.Out += CS.ShowModes ? formatModes((*B)[I], *S.Syms)
                                : formatAnalysis((*B)[I], *S.Syms);
          if ((*B)[I].Dom)
            R.Out += (*B)[I].Dom->formatFacts((*B)[I], *S.Program);
        }
      }
    }
    meterBytes(S);
  }
  S.LastTouch = ++TouchClock;

  {
    std::lock_guard<std::mutex> CL(S.CacheMu);
    // Only successes memoize: the response of a failed drain (budget hit,
    // machine error) is not a stable function of the slot key.
    if (R.Err.empty())
      S.RespCache.emplace(Key, R.Out);
    S.InFlight.erase(Key);
  }
  {
    std::lock_guard<std::mutex> PL(P->M);
    P->R = R;
    P->Ready = true;
  }
  P->CV.notify_all();
  if (R.Err.empty())
    CS.LastSpec[&S] = EditSpec;
  maybeEvict(&S);
}

void AnalysisServer::doEdit(ClientState &CS, const std::string &Rest,
                            Response &R) {
  PredSig Sig;
  if (!parseSig(Rest, Sig)) {
    R.Err = "bad edit '" + Rest + "': expected name/arity\n";
    return;
  }
  StoreSlot &S = *CS.Cursor;
  auto SpecIt = CS.LastSpec.find(&S);
  if (SpecIt == CS.LastSpec.end()) {
    R.Err = "analysis error: reanalyze requires a prior analyze()\n";
    return;
  }
  {
    std::unique_lock<std::shared_mutex> SL(S.Mu);
    ensureSession(S);
    ++S.Drains;
    ++NDrains;
    Result<AnalysisResult> A =
        S.Session->reanalyze({Sig}, SpecIt->second);
    if (!A) {
      R.Err = "analysis error: " + A.diag().str() + "\n";
    } else {
      R.Out = CS.ShowModes ? formatModes(*A, *S.Syms)
                           : formatAnalysis(*A, *S.Syms);
      if (A->Dom)
        R.Out += A->Dom->formatFacts(*A, *S.Program);
    }
    meterBytes(S);
  }
  S.LastTouch = ++TouchClock;
  {
    // The edit invalidated part of the store; memoized response bytes of
    // this slot are stale by assumption (even though touch-edits happen to
    // recompute the same bytes, correctness must not rely on that here).
    std::lock_guard<std::mutex> CL(S.CacheMu);
    S.RespCache.clear();
  }
  maybeEvict(&S);
}

void AnalysisServer::doOptimize(ClientState &CS, const std::string &Rest,
                                Response &R) {
  StoreSlot &S = *CS.Cursor;
  std::string Spec = Rest;
  if (Spec.empty()) {
    auto SpecIt = CS.LastSpec.find(&S);
    if (SpecIt == CS.LastSpec.end()) {
      R.Err = "optimize what? (optimize qsort(glist, var, var), or run an "
              "entry first)\n";
      return;
    }
    Spec = SpecIt->second;
  }
  ++NQueries;
  // The response is a pure function of (module, domain, spec) — the
  // report toggle does not apply — so it rides the same per-slot cache
  // and in-flight coalescing as entry/batch, under its own key prefix.
  std::string Key = "o:" + Spec;

  std::shared_ptr<Pending> P;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> CL(S.CacheMu);
    auto Hit = S.RespCache.find(Key);
    if (Hit != S.RespCache.end()) {
      ++S.Hits;
      ++NCacheHits;
      R.Out = Hit->second;
      S.LastTouch = ++TouchClock;
      CS.LastSpec[&S] = Spec;
      return;
    }
    auto In = S.InFlight.find(Key);
    if (In != S.InFlight.end()) {
      P = In->second;
      ++NCoalesced;
    } else {
      P = std::make_shared<Pending>();
      S.InFlight.emplace(Key, P);
      Leader = true;
    }
  }

  if (!Leader) {
    std::unique_lock<std::mutex> PL(P->M);
    P->CV.wait(PL, [&] { return P->Ready; });
    R = P->R;
    if (R.Err.empty())
      CS.LastSpec[&S] = Spec;
    return;
  }

  {
    std::unique_lock<std::shared_mutex> SL(S.Mu);
    ensureSession(S);
    ++S.Drains;
    ++NDrains;
    Result<AnalysisResult> A = S.Session->analyze(Spec);
    if (!A) {
      R.Err = "analysis error: " + A.diag().str() + "\n";
    } else {
      SpecializationReport Rep;
      CompiledProgram Opt = specializeProgram(
          *S.Program, buildSpecializationFacts(*A, *S.Program), Rep);
      R.Out = formatSpecialization(*Opt.Module, Rep);
    }
    meterBytes(S);
  }
  S.LastTouch = ++TouchClock;

  {
    std::lock_guard<std::mutex> CL(S.CacheMu);
    if (R.Err.empty())
      S.RespCache.emplace(Key, R.Out);
    S.InFlight.erase(Key);
  }
  {
    std::lock_guard<std::mutex> PL(P->M);
    P->R = R;
    P->Ready = true;
  }
  P->CV.notify_all();
  if (R.Err.empty())
    CS.LastSpec[&S] = Spec;
  maybeEvict(&S);
}

void AnalysisServer::doExport(ClientState &CS, const std::string &Rest,
                              Response &R) {
  if (Rest.empty() || Rest.find(' ') != std::string::npos) {
    R.Err = "export what? (export TAG)\n";
    return;
  }
  StoreSlot &S = *CS.Cursor;
  std::string Bytes;
  {
    // Exclusive: ensureSession may create the session, and export walks
    // the store's journals, which a concurrent drain would mutate.
    std::unique_lock<std::shared_mutex> SL(S.Mu);
    ensureSession(S);
    Result<std::string> B = S.Session->exportSummaries();
    if (!B) {
      R.Err = "export error: " + B.diag().str() + "\n";
      return;
    }
    Bytes = B.take();
    meterBytes(S);
  }
  S.LastTouch = ++TouchClock;
  size_t N = Bytes.size();
  {
    std::lock_guard<std::mutex> L(BundleMu);
    Bundles[Rest] = std::move(Bytes);
  }
  R.Err = "exported " + std::to_string(N) + " summary bytes to bundle '" +
          Rest + "'\n";
}

void AnalysisServer::doImport(ClientState &CS, const std::string &Rest,
                              Response &R) {
  if (Rest.empty() || Rest.find(' ') != std::string::npos) {
    R.Err = "import what? (import TAG; export one first)\n";
    return;
  }
  std::string Bytes;
  {
    std::lock_guard<std::mutex> L(BundleMu);
    auto It = Bundles.find(Rest);
    if (It == Bundles.end()) {
      R.Err = "unknown bundle '" + Rest + "' (export TAG first)\n";
      return;
    }
    Bytes = It->second;
  }
  StoreSlot &S = *CS.Cursor;
  Result<AnalysisStore::ImportStats> IS = makeError("unreachable");
  {
    std::unique_lock<std::shared_mutex> SL(S.Mu);
    ensureSession(S);
    IS = S.Session->importSummaries(Bytes);
    if (IS)
      meterBytes(S);
  }
  S.LastTouch = ++TouchClock;
  if (!IS) {
    R.Err = "import error: " + IS.diag().str() + "\n";
    return;
  }
  // Imported traces are warm-start hints, not answers: the response cache
  // stays valid (byte-identity is the store's contract either way).
  R.Err = "imported " + std::to_string(IS->Banked) + "/" +
          std::to_string(IS->BundleTraces) + " traces from bundle '" + Rest +
          "' (" + std::to_string(IS->DroppedStale) + " stale, " +
          std::to_string(IS->DroppedUnresolved) + " unresolved dropped)\n";
  maybeEvict(&S);
}

void AnalysisServer::doDump(ClientState &CS, Response &R) {
  StoreSlot &S = *CS.Cursor;
  std::shared_lock<std::shared_mutex> SL(S.Mu);
  const AnalysisStore *St = S.Session ? S.Session->store() : nullptr;
  if (!St) {
    R.Err = "no store yet (run an entry first)\n";
    return;
  }
  std::string D = St->canonicalDump(*S.Syms);
  R.Out = D;
  if (!D.empty() && D.back() != '\n')
    R.Out += "\n";
  S.LastTouch = ++TouchClock;
}

void AnalysisServer::doStats(ClientState &CS, Response &R) {
  Stats T = stats();
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "server: requests %llu, queries %llu (response-cache hits "
                "%llu, coalesced %llu), drains %llu\n"
                "stores: live %llu, bytes %llu (cap %llu), evictions %llu "
                "(bytes %llu), rewarms %llu\n"
                "bundles: %llu tagged, %llu bytes\n",
                (unsigned long long)T.Requests, (unsigned long long)T.Queries,
                (unsigned long long)T.CacheHits,
                (unsigned long long)T.Coalesced, (unsigned long long)T.Drains,
                (unsigned long long)T.LiveStores,
                (unsigned long long)T.LiveBytes,
                (unsigned long long)Cfg.MaxStoreBytes,
                (unsigned long long)T.Evictions,
                (unsigned long long)T.EvictedBytes,
                (unsigned long long)T.Rewarms, (unsigned long long)T.Bundles,
                (unsigned long long)T.BundleBytes);
  R.Out += Buf;
  // Per-store lines in identity order (label, domain) — never slot-map or
  // touch order, both of which depend on interleaving.
  std::vector<StoreSlot *> All;
  {
    std::lock_guard<std::mutex> L(GM);
    for (auto &[K, S] : Slots)
      All.push_back(S.get());
  }
  std::sort(All.begin(), All.end(), [](StoreSlot *A, StoreSlot *B) {
    return std::tie(A->Label, A->DomainName) <
           std::tie(B->Label, B->DomainName);
  });
  for (StoreSlot *S : All) {
    std::snprintf(Buf, sizeof(Buf),
                  "store %s [%s]: bytes %llu, hits %llu, drains %llu, "
                  "evictions %llu, rewarms %llu\n",
                  S->Label.c_str(), S->DomainName.c_str(),
                  (unsigned long long)S->Bytes.load(),
                  (unsigned long long)S->Hits.load(),
                  (unsigned long long)S->Drains.load(),
                  (unsigned long long)S->Evictions.load(),
                  (unsigned long long)S->Rewarms.load());
    R.Out += Buf;
  }
  // The current slot's deep store statistics, as the single-client REPL
  // printed them (plus the journal-compaction line).
  StoreSlot &S = *CS.Cursor;
  std::shared_lock<std::shared_mutex> SL(S.Mu);
  const AnalysisStore *St = S.Session ? S.Session->store() : nullptr;
  if (!St) {
    R.Err = "no store yet (run an entry first)\n";
    return;
  }
  const AnalysisStore::Stats &SS = St->stats();
  char Deep[1024];
  std::snprintf(
      Deep, sizeof(Deep),
      "queries: %llu (cache hits %llu, cold %llu, warm %llu)\n"
      "runs: %llu replayed, %llu executed; activations: %llu "
      "replayed, %llu executed\n"
      "warm drains: %llu batches, %llu spec replays (%llu "
      "committed, %llu discarded), %llu critical units\n"
      "store: %llu roots, %llu entries (%llu new, %llu shared)\n"
      "reanalyses: %llu (roots invalidated %llu, entries "
      "invalidated %llu, last cone %llu)\n"
      "journals: %llu compactions, %llu trace handles dropped\n",
      (unsigned long long)SS.Queries, (unsigned long long)SS.CacheHits,
      (unsigned long long)SS.ColdQueries, (unsigned long long)SS.WarmQueries,
      (unsigned long long)SS.ReplayedRuns, (unsigned long long)SS.ExecutedRuns,
      (unsigned long long)SS.ReplayedActivations,
      (unsigned long long)SS.ExecutedActivations,
      (unsigned long long)SS.WarmReplayBatches,
      (unsigned long long)SS.WarmSpecReplays,
      (unsigned long long)SS.WarmSpecCommitted,
      (unsigned long long)SS.WarmSpecDiscarded,
      (unsigned long long)SS.WarmCriticalUnits,
      (unsigned long long)St->numRoots(), (unsigned long long)St->table().size(),
      (unsigned long long)SS.NewEntries, (unsigned long long)SS.SharedEntries,
      (unsigned long long)SS.Reanalyses, (unsigned long long)SS.InvalidatedRoots,
      (unsigned long long)SS.InvalidatedEntries,
      (unsigned long long)SS.LastConeEntries,
      (unsigned long long)SS.Compactions,
      (unsigned long long)SS.CompactedTraces);
  R.Out += Deep;
  S.LastTouch = ++TouchClock;
}

void AnalysisServer::maybeEvict(StoreSlot *Keep) {
  if (Cfg.MaxStoreBytes == 0)
    return;
  uint64_t Total = 0;
  std::vector<StoreSlot *> Victims;
  {
    std::lock_guard<std::mutex> L(GM);
    for (auto &[K, S] : Slots) {
      Total += S->Bytes.load();
      if (S.get() != Keep)
        Victims.push_back(S.get());
    }
  }
  if (Total <= Cfg.MaxStoreBytes)
    return;
  std::sort(Victims.begin(), Victims.end(), [](StoreSlot *A, StoreSlot *B) {
    return A->LastTouch.load() < B->LastTouch.load();
  });
  for (StoreSlot *V : Victims) {
    if (Total <= Cfg.MaxStoreBytes)
      break;
    // try_lock only: never stall on (or deadlock with) a slot mid-drain —
    // a busy slot is re-metered, and re-considered, at its next writer op.
    std::unique_lock<std::shared_mutex> SL(V->Mu, std::try_to_lock);
    if (!SL.owns_lock() || !V->Session)
      continue;
    uint64_t B = V->Bytes.exchange(0);
    V->Session.reset();
    V->Live = false;
    V->WasEvicted = true;
    ++V->Evictions;
    ++NEvictions;
    NEvictedBytes += B;
    {
      // Dropping the memoized responses with the store keeps "evicted"
      // meaningful: the next touch truly re-warms (and re-verifies) from
      // a cold store instead of serving bytes the store no longer backs.
      std::lock_guard<std::mutex> CL(V->CacheMu);
      V->RespCache.clear();
    }
    Total -= B;
  }
}

AnalysisServer::Stats AnalysisServer::stats() const {
  Stats T;
  T.Requests = NRequests.load();
  T.Queries = NQueries.load();
  T.Drains = NDrains.load();
  T.CacheHits = NCacheHits.load();
  T.Coalesced = NCoalesced.load();
  T.Evictions = NEvictions.load();
  T.EvictedBytes = NEvictedBytes.load();
  T.Rewarms = NRewarms.load();
  {
    std::lock_guard<std::mutex> L(BundleMu);
    T.Bundles = Bundles.size();
    for (const auto &[Tag, Bytes] : Bundles)
      T.BundleBytes += Bytes.size();
  }
  std::lock_guard<std::mutex> L(GM);
  for (const auto &[K, S] : Slots) {
    if (S->Live.load())
      ++T.LiveStores;
    T.LiveBytes += S->Bytes.load();
  }
  return T;
}

std::unique_lock<std::shared_mutex>
AnalysisServer::lockCurrentStoreForTest(int Client) {
  StoreSlot *S = nullptr;
  {
    std::lock_guard<std::mutex> L(GM);
    auto It = Clients.find(Client);
    if (It != Clients.end())
      S = It->second->Cursor;
  }
  if (!S)
    return std::unique_lock<std::shared_mutex>();
  return std::unique_lock<std::shared_mutex>(S->Mu);
}
