//===- programs/Prelude.h - Standard library predicates ---------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small standard library of list and arithmetic predicates written in
/// the supported Prolog subset. Programs that want it prepend
/// preludeSource() to their own text (the benchmark programs inline their
/// dependencies instead, to stay faithful to the original suite).
///
/// Provided: append/3, member/2, memberchk/2, length/2, reverse/2,
/// select/3, nth0/3, nth1/3, last/2, between/3, numlist/3, sum_list/2,
/// max_list/2, min_list/2, msort/2 (insertion sort, standard order),
/// delete/3, exclude-by-equality subtract/3, permutation/2.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_PROGRAMS_PRELUDE_H
#define AWAM_PROGRAMS_PRELUDE_H

#include <string_view>

namespace awam {

/// The prelude's Prolog source.
std::string_view preludeSource();

} // namespace awam

#endif // AWAM_PROGRAMS_PRELUDE_H
