//===- programs/Prelude.cpp -----------------------------------------------===//

#include "programs/Prelude.h"

using namespace awam;

std::string_view awam::preludeSource() {
  static constexpr std::string_view Source = R"PL(
% ---- AWAM prelude: list and arithmetic utilities ----

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, [X|_]) :- !.
memberchk(X, [_|T]) :- memberchk(X, T).

length(L, N) :- length_(L, 0, N).
length_([], N, N).
length_([_|T], N0, N) :- N1 is N0 + 1, length_(T, N1, N).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], Acc, Acc).
reverse_([H|T], Acc, R) :- reverse_(T, [H|Acc], R).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

nth0(0, [X|_], X) :- !.
nth0(N, [_|T], X) :- N > 0, N1 is N - 1, nth0(N1, T, X).

nth1(1, [X|_], X) :- !.
nth1(N, [_|T], X) :- N > 1, N1 is N - 1, nth1(N1, T, X).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

numlist(L, H, []) :- L > H, !.
numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).

sum_list(L, S) :- sum_list_(L, 0, S).
sum_list_([], S, S).
sum_list_([H|T], A, S) :- A1 is A + H, sum_list_(T, A1, S).

max_list([H|T], M) :- max_list_(T, H, M).
max_list_([], M, M).
max_list_([H|T], A, M) :- H > A, !, max_list_(T, H, M).
max_list_([_|T], A, M) :- max_list_(T, A, M).

min_list([H|T], M) :- min_list_(T, H, M).
min_list_([], M, M).
min_list_([H|T], A, M) :- H < A, !, min_list_(T, H, M).
min_list_([_|T], A, M) :- min_list_(T, A, M).

% Insertion sort by the standard order of terms (duplicates kept).
msort([], []).
msort([H|T], S) :- msort(T, S1), msort_insert(H, S1, S).
msort_insert(X, [], [X]).
msort_insert(X, [Y|T], [X, Y|T]) :- X @=< Y, !.
msort_insert(X, [Y|T], [Y|R]) :- msort_insert(X, T, R).

delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

subtract([], _, []).
subtract([H|T], L, R) :- memberchk(H, L), !, subtract(T, L, R).
subtract([H|T], L, [H|R]) :- subtract(T, L, R).

permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).
)PL";
  return Source;
}
