//===- programs/Benchmarks.cpp - Benchmark program sources ----------------===//

#include "programs/Benchmarks.h"

#include <array>
#include <string>

using namespace awam;

namespace {

// Shared symbolic-differentiation core (Warren's deriv benchmark). The four
// programs log10 / ops8 / times10 / divide10 differentiate different
// expressions over this rule set.
constexpr std::string_view DerivRules = R"PL(
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V ^ 2)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- integer(N), !, N1 is N - 1, d(U, X, DU).
d(- U, X, - DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
)PL";

constexpr std::string_view Log10Source = R"PL(
main :- log10(_).
log10(E) :-
    d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, E).
)PL";

constexpr std::string_view Ops8Source = R"PL(
main :- ops8(_).
ops8(E) :- d((x + 1) * ((x ^ 2 + 2) * (x ^ 3 + 3)), x, E).
)PL";

constexpr std::string_view Times10Source = R"PL(
main :- times10(_).
times10(E) :-
    d(((((((((x * x) * x) * x) * x) * x) * x) * x) * x) * x, x, E).
)PL";

constexpr std::string_view Divide10Source = R"PL(
main :- divide10(_).
divide10(E) :-
    d(((((((((x / x) / x) / x) / x) / x) / x) / x) / x) / x, x, E).
)PL";

constexpr std::string_view TakSource = R"PL(
main :- tak(18, 12, 6, _).
tak(X, Y, Z, A) :- X =< Y, !, Z = A.
tak(X, Y, Z, A) :-
    X1 is X - 1, tak(X1, Y, Z, A1),
    Y1 is Y - 1, tak(Y1, Z, X, A2),
    Z1 is Z - 1, tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).
)PL";

constexpr std::string_view NreverseSource = R"PL(
main :- nreverse([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,
                  21,22,23,24,25,26,27,28,29,30], _).
nreverse([], []).
nreverse([X|L0], L) :- nreverse(L0, L1), concatenate(L1, [X], L).
concatenate([], L, L).
concatenate([X|L1], L2, [X|L3]) :- concatenate(L1, L2, L3).
)PL";

constexpr std::string_view QsortSource = R"PL(
main :- qsort([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11,
               55,29,39,81,90,37,10,0,66,51,7,21,85,27,31,63,75,4,95,99,
               11,28,61,74,18,92,40,53,59,8], _, []).
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
)PL";

constexpr std::string_view QuerySource = R"PL(
main :- query(_).
query([C1, D1, C2, D2]) :-
    density(C1, D1), density(C2, D2),
    D1 > D2, 20 * D1 < 21 * D2.
density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.
pop(china, 8250).       area(china, 3380).
pop(india, 5863).       area(india, 1139).
pop(ussr, 2521).        area(ussr, 8708).
pop(usa, 2119).         area(usa, 3609).
pop(indonesia, 1276).   area(indonesia, 570).
pop(japan, 1097).       area(japan, 148).
pop(brazil, 1042).      area(brazil, 3288).
pop(bangladesh, 750).   area(bangladesh, 55).
pop(pakistan, 682).     area(pakistan, 311).
pop(w_germany, 620).    area(w_germany, 96).
pop(nigeria, 613).      area(nigeria, 373).
pop(mexico, 581).       area(mexico, 764).
pop(uk, 559).           area(uk, 86).
pop(italy, 554).        area(italy, 116).
pop(france, 525).       area(france, 213).
pop(philippines, 415).  area(philippines, 90).
pop(thailand, 410).     area(thailand, 200).
pop(turkey, 383).       area(turkey, 296).
pop(egypt, 364).        area(egypt, 386).
pop(spain, 352).        area(spain, 190).
pop(poland, 337).       area(poland, 121).
pop(s_korea, 335).      area(s_korea, 37).
pop(iran, 320).         area(iran, 628).
pop(ethiopia, 272).     area(ethiopia, 350).
pop(argentina, 251).    area(argentina, 1080).
)PL";

constexpr std::string_view ZebraSource = R"PL(
main :- zebra(_, _).
zebra(Zebra, Water) :-
    Houses = [house(_, norwegian, _, _, _), _,
              house(_, _, _, milk, _), _, _],
    member(house(red, english, _, _, _), Houses),
    right_of(house(green, _, _, coffee, _),
             house(ivory, _, _, _, _), Houses),
    next_to(house(_, norwegian, _, _, _),
            house(blue, _, _, _, _), Houses),
    member(house(_, spanish, dog, _, _), Houses),
    member(house(_, _, snails, _, old_gold), Houses),
    member(house(yellow, _, _, _, kools), Houses),
    next_to(house(_, _, _, _, chesterfield),
            house(_, _, fox, _, _), Houses),
    next_to(house(_, _, horse, _, _),
            house(_, _, _, _, kools), Houses),
    member(house(_, _, _, orange_juice, lucky_strike), Houses),
    member(house(_, ukrainian, _, tea, _), Houses),
    member(house(_, japanese, _, _, parliament), Houses),
    member(house(_, _, zebra, _, _), Houses),
    member(house(_, _, _, water, _), Houses),
    member(house(_, Zebra, zebra, _, _), Houses),
    member(house(_, Water, _, water, _), Houses).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
right_of(A, B, [B, A|_]).
right_of(A, B, [_|T]) :- right_of(A, B, T).
next_to(A, B, [A, B|_]).
next_to(A, B, [B, A|_]).
next_to(A, B, [_|T]) :- next_to(A, B, T).
)PL";

constexpr std::string_view SerialiseSource = R"PL(
main :- serialise([97,98,108,101,32,119,97,115,32,105,32,101,114,101,32,
                   105,32,115,97,119,32,101,108,98,97], _).
serialise(L, R) :- pairlists(L, R, A), arrange(A, T), numbered(T, 1, _).
pairlists([X|L], [Y|R], [pair(X, Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).
arrange([X|L], tree(T1, X, T2)) :-
    split(L, X, L1, L2),
    arrange(L1, T1),
    arrange(L2, T2).
arrange([], void).
split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).
before(pair(X1, _), pair(X2, _)) :- X1 < X2.
numbered(tree(T1, pair(_, N1), T2), N0, N) :-
    numbered(T1, N0, N1),
    N2 is N1 + 1,
    numbered(T2, N2, N).
numbered(void, N, N).
)PL";

constexpr std::string_view QueensSource = R"PL(
main :- queens(8, _).
queens(N, Qs) :- range(1, N, Ns), place_queens(Ns, [], Qs).
place_queens([], Qs, Qs).
place_queens(UnplacedQs, SafeQs, Qs) :-
    selectq(UnplacedQs, UnplacedQs1, Q),
    not_attack(SafeQs, Q),
    place_queens(UnplacedQs1, [Q|SafeQs], Qs).
not_attack(Xs, X) :- not_attack_at(Xs, X, 1).
not_attack_at([], _, _).
not_attack_at([Y|Ys], X, N) :-
    X =\= Y + N, X =\= Y - N,
    N1 is N + 1,
    not_attack_at(Ys, X, N1).
selectq([X|Xs], Xs, X).
selectq([Y|Ys], [Y|Zs], X) :- selectq(Ys, Zs, X).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
)PL";

std::string makeDerivSource(std::string_view Driver) {
  return std::string(Driver) + std::string(DerivRules);
}

struct BenchStorage {
  std::string Log10 = makeDerivSource(Log10Source);
  std::string Ops8 = makeDerivSource(Ops8Source);
  std::string Times10 = makeDerivSource(Times10Source);
  std::string Divide10 = makeDerivSource(Divide10Source);
  std::array<BenchmarkProgram, 11> Programs = {{
      {"log10", Log10, "main", true},
      {"ops8", Ops8, "main", true},
      {"times10", Times10, "main", true},
      {"divide10", Divide10, "main", true},
      {"tak", TakSource, "main", true},
      {"nreverse", NreverseSource, "main", true},
      {"qsort", QsortSource, "main", true},
      {"query", QuerySource, "main", true},
      {"zebra", ZebraSource, "main", true},
      {"serialise", SerialiseSource, "main", true},
      {"queens_8", QueensSource, "main", true},
  }};
};

const BenchStorage &storage() {
  static const BenchStorage S;
  return S;
}

} // namespace

std::span<const BenchmarkProgram> awam::benchmarkPrograms() {
  return storage().Programs;
}

const BenchmarkProgram *awam::findBenchmark(std::string_view Name) {
  for (const BenchmarkProgram &B : storage().Programs)
    if (B.Name == Name)
      return &B;
  return nullptr;
}
