//===- programs/Benchmarks.h - The PLM benchmark suite ----------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark programs of the paper's Table 1, reconstructed from the
/// classic Warren / PLM benchmark suite [Van Roy 84]: the four symbolic
/// differentiation programs (log10, ops8, times10, divide10), tak,
/// nreverse, qsort, query, zebra, serialise and queens_8. Each program is
/// self-contained (library predicates inlined) and defines main/0 as the
/// analysis and execution entry point.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_PROGRAMS_BENCHMARKS_H
#define AWAM_PROGRAMS_BENCHMARKS_H

#include <span>
#include <string_view>

namespace awam {

/// One benchmark program.
struct BenchmarkProgram {
  std::string_view Name;   ///< e.g. "nreverse"
  std::string_view Source; ///< full Prolog source
  /// Entry specification for the analyzers ("main" for all programs, as in
  /// the paper's whole-program analyses).
  std::string_view EntrySpec;
  /// Whether the concrete machine can run main/0 to success (all of them).
  bool Runnable;
};

/// All benchmarks in the paper's Table 1 order.
std::span<const BenchmarkProgram> benchmarkPrograms();

/// Finds a benchmark by name; nullptr if unknown.
const BenchmarkProgram *findBenchmark(std::string_view Name);

} // namespace awam

#endif // AWAM_PROGRAMS_BENCHMARKS_H
