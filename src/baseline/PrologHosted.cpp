//===- baseline/PrologHosted.cpp ------------------------------------------===//

#include "baseline/PrologHosted.h"

#include "compiler/Builtins.h"
#include "support/StringUtil.h"
#include "term/TermWriter.h"
#include "wam/Machine.h"

using namespace awam;

namespace {

/// Emits \p T as Prolog data text with variables as '$v'(Id).
void encodeTerm(const Term *T, const SymbolTable &Syms, std::string &Out) {
  switch (T->kind()) {
  case TermKind::Var:
    Out += "'$v'(" + std::to_string(T->varId()) + ")";
    return;
  case TermKind::Int:
    Out += std::to_string(T->intValue());
    return;
  case TermKind::Atom:
    Out += quoteAtom(Syms.name(T->functor()));
    return;
  case TermKind::Struct:
    if (T->isCons()) {
      Out += "[";
      encodeTerm(T->arg(0), Syms, Out);
      Out += "|";
      encodeTerm(T->arg(1), Syms, Out);
      Out += "]";
      return;
    }
    Out += quoteAtom(Syms.name(T->functor()));
    Out += "(";
    for (int I = 0, E = T->arity(); I != E; ++I) {
      if (I)
        Out += ",";
      encodeTerm(T->arg(I), Syms, Out);
    }
    Out += ")";
    return;
  }
}

void encodeGoal(const Term *G, const SymbolTable &Syms, std::string &Out) {
  if (G->isAtom() && G->functor() == SymbolTable::SymCut) {
    Out += "cut";
    return;
  }
  if (G->isAtom() && G->functor() == SymbolTable::SymFail) {
    Out += "failgoal";
    return;
  }
  int Arity = G->isStruct() ? G->arity() : 0;
  bool IsBuiltin = lookupBuiltin(Syms.name(G->functor()), Arity).has_value();
  Out += IsBuiltin ? "b(" : "u(";
  Out += quoteAtom(Syms.name(G->functor()));
  Out += "," + std::to_string(Arity) + ",[";
  for (int I = 0; I != Arity; ++I) {
    if (I)
      Out += ",";
    encodeTerm(G->arg(I), Syms, Out);
  }
  Out += "])";
}

} // namespace

std::string awam::reflectProgram(const ParsedProgram &Program,
                                 const SymbolTable &Syms,
                                 std::string_view EntryName) {
  // Group clauses per predicate, preserving order.
  std::vector<std::pair<Symbol, int>> Order;
  std::map<std::pair<Symbol, int>, std::vector<const ParsedClause *>> Groups;
  for (const ParsedClause &C : Program.Clauses) {
    auto Key = std::make_pair(
        C.Head->functor(), C.Head->isStruct() ? C.Head->arity() : 0);
    if (!Groups.count(Key))
      Order.push_back(Key);
    Groups[Key].push_back(&C);
  }

  std::string Out;
  Out += "top_goal(" + quoteAtom(EntryName) + ", 0).\n";
  for (auto &Key : Order) {
    auto &[Name, Arity] = Key;
    Out += "clauses(" + quoteAtom(Syms.name(Name)) + ", " +
           std::to_string(Arity) + ", [";
    bool FirstClause = true;
    for (const ParsedClause *C : Groups[Key]) {
      if (!FirstClause)
        Out += ",\n    ";
      FirstClause = false;
      Out += "c([";
      for (int I = 0; I != Arity; ++I) {
        if (I)
          Out += ",";
        encodeTerm(C->Head->arg(I), Syms, Out);
      }
      Out += "],[";
      for (size_t I = 0; I != C->Body.size(); ++I) {
        if (I)
          Out += ",";
        encodeGoal(C->Body[I], Syms, Out);
      }
      Out += "])";
    }
    Out += "]).\n";
  }
  return Out;
}

std::string_view awam::prologAnalyzerSource(PrologDomain D) {
  // A mode/groundness analyzer over the domain var < {g < nv} < any with
  // the extension-table control scheme, written in the style of the
  // Prolog-hosted analyzers the paper compares against: the table is a
  // linear list threaded through every predicate, environments are
  // association lists, and clause matching walks the reflected program
  // term by term.
  static constexpr std::string_view Source = R"PL(
analyze_main(Table) :-
    top_goal(Name, Arity),
    mk_any_pat(Arity, Pat),
    fix_iterate(100, Name, Arity, Pat, [], Table).

mk_any_pat(0, []) :- !.
mk_any_pat(N, [any|R]) :- N1 is N - 1, mk_any_pat(N1, R).

fix_iterate(0, _, _, _, T, T).
fix_iterate(N, Name, Arity, Pat, T0, T) :-
    N > 0,
    clear_explored(T0, T1),
    run_call(Name, Arity, Pat, T1, T2, same, Ch, _, _),
    fix_more(Ch, N, Name, Arity, Pat, T2, T).

fix_more(same, _, _, _, _, T, T) :- !.
fix_more(changed, N, Name, Arity, Pat, T0, T) :-
    N1 is N - 1,
    fix_iterate(N1, Name, Arity, Pat, T0, T).

clear_explored([], []).
clear_explored([e(Nm, Ar, P, _, S)|Es], [e(Nm, Ar, P, no, S)|Rs]) :-
    clear_explored(Es, Rs).

% ---- one call with the extension-table protocol ----

run_call(Name, Arity, Pat, T0, T, Ch0, Ch, Succ, St) :-
    et_find(T0, Name, Arity, Pat, e(_, _, _, Explored, S0)), !,
    run_found(Explored, Name, Arity, Pat, S0, T0, T, Ch0, Ch, Succ, St).
run_call(Name, Arity, Pat, T0, T, _, Ch, Succ, St) :-
    explore_pred(Name, Arity, Pat, [e(Name, Arity, Pat, yes, none)|T0],
                 T, changed, Ch, Succ, St).

run_found(yes, _, _, _, none, T, T, Ch, Ch, [], failst) :- !.
run_found(yes, _, _, _, some(S), T, T, Ch, Ch, S, okst) :- !.
run_found(no, Name, Arity, Pat, _, T0, T, Ch0, Ch, Succ, St) :-
    et_mark_explored(T0, Name, Arity, Pat, T1),
    explore_pred(Name, Arity, Pat, T1, T, Ch0, Ch, Succ, St).

explore_pred(Name, Arity, Pat, T0, T, Ch0, Ch, Succ, St) :-
    clauses(Name, Arity, Cs), !,
    explore_clauses(Cs, Name, Arity, Pat, T0, T1, Ch0, Ch),
    finish_call(T1, Name, Arity, Pat, T, Succ, St).
explore_pred(_, _, _, T, T, Ch, Ch, [], failst).

finish_call(T, Name, Arity, Pat, T, Succ, St) :-
    et_find(T, Name, Arity, Pat, e(_, _, _, _, S)),
    succ_status(S, Succ, St).

succ_status(none, [], failst).
succ_status(some(S), S, okst).

explore_clauses([], _, _, _, T, T, Ch, Ch).
explore_clauses([c(Head, Body)|Cs], Name, Arity, Pat, T0, T, Ch0, Ch) :-
    try_clause(Head, Body, Name, Arity, Pat, T0, T1, Ch0, Ch1),
    explore_clauses(Cs, Name, Arity, Pat, T1, T, Ch1, Ch).

try_clause(Head, Body, Name, Arity, Pat, T0, T, Ch0, Ch) :-
    match_args(Pat, Head, [], Env0),
    solve_body(Body, Env0, Env, T0, T1, Ch0, Ch1, okst, St),
    try_update(St, Head, Env, Name, Arity, Pat, T1, T, Ch1, Ch).

try_update(failst, _, _, _, _, _, T, T, Ch, Ch) :- !.
try_update(okst, Head, Env, Name, Arity, Pat, T0, T, Ch0, Ch) :-
    vals_of(Head, Env, SPat),
    et_update(T0, Name, Arity, Pat, SPat, T, Ch0, Ch).

% ---- the extension table: a linear list of entries ----

et_find([E|_], Nm, Ar, Pat, E) :- E = e(Nm, Ar, Pat, _, _), !.
et_find([_|Es], Nm, Ar, Pat, E) :- et_find(Es, Nm, Ar, Pat, E).

et_mark_explored([e(Nm, Ar, Pat, _, S)|Es], Nm, Ar, Pat,
                 [e(Nm, Ar, Pat, yes, S)|Es]) :- !.
et_mark_explored([E|Es], Nm, Ar, Pat, [E|Rs]) :-
    et_mark_explored(Es, Nm, Ar, Pat, Rs).

et_update([e(Nm, Ar, Pat, Ex, S0)|Es], Nm, Ar, Pat, SPat,
          [e(Nm, Ar, Pat, Ex, some(S1))|Es], Ch0, Ch) :- !,
    lub_update(S0, SPat, S1, Ch0, Ch).
et_update([E|Es], Nm, Ar, Pat, SPat, [E|Rs], Ch0, Ch) :-
    et_update(Es, Nm, Ar, Pat, SPat, Rs, Ch0, Ch).

lub_update(none, S, S, _, changed) :- !.
lub_update(some(S0), S, S1, Ch0, Ch) :-
    lub_list(S0, S, S1),
    lub_changed(S0, S1, Ch0, Ch).

lub_changed(S0, S1, Ch, Ch) :- S0 == S1, !.
lub_changed(_, _, _, changed).

lub_list([], [], []).
lub_list([A|As], [B|Bs], [C|Cs]) :- lub(A, B, C), lub_list(As, Bs, Cs).

lub(X, X, X) :- !.
lub(g, nv, nv) :- !.
lub(nv, g, nv) :- !.
lub(_, _, any).

% ---- abstract head unification over the reflected terms ----

match_args([], [], Env, Env).
match_args([V|Vs], [T|Ts], Env0, Env) :-
    unify_val(V, T, Env0, Env1),
    match_args(Vs, Ts, Env1, Env).

unify_val(V, '$v'(I), Env0, Env) :- !, env_meet(I, V, Env0, Env).
unify_val(_, T, Env, Env) :- atomic(T), !.
unify_val(V, T, Env0, Env) :-
    sub_val(V, SV),
    T =.. [_|Args],
    unify_each(SV, Args, Env0, Env).

unify_each(_, [], Env, Env).
unify_each(SV, [A|As], Env0, Env) :-
    unify_val(SV, A, Env0, Env1),
    unify_each(SV, As, Env1, Env).

sub_val(g, g) :- !.
sub_val(var, var) :- !.
sub_val(_, any).

% ---- environments (association lists) ----

env_meet(I, V, Env0, Env) :-
    env_get(Env0, I, Old), !,
    meet(Old, V, New),
    env_set(Env0, I, New, Env).
env_meet(I, V, Env0, [I - V1|Env0]) :- meet(var, V, V1).

env_get([I - V|_], I, V) :- !.
env_get([_|E], I, V) :- env_get(E, I, V).

env_set([I - _|E], I, V, [I - V|E]) :- !.
env_set([P|E], I, V, [P|E1]) :- env_set(E, I, V, E1).

meet(any, X, X) :- !.
meet(X, any, X) :- !.
meet(var, X, X) :- !.
meet(X, var, X) :- !.
meet(g, _, g) :- !.
meet(_, g, g) :- !.
meet(nv, nv, nv).

% ---- abstracting argument values ----

vals_of([], _, []).
vals_of([T|Ts], Env, [V|Vs]) :- val_of(T, Env, V), vals_of(Ts, Env, Vs).

val_of('$v'(I), Env, V) :- !, val_lookup(I, Env, V).
val_of(T, _, g) :- atomic(T), !.
val_of(T, Env, V) :-
    T =.. [_|Args],
    vals_of(Args, Env, Vs),
    fold_nv(Vs, g, V).

val_lookup(I, Env, V) :- env_get(Env, I, V0), !, V = V0.
val_lookup(_, _, var).

fold_nv([], A, A).
fold_nv([g|Vs], A, V) :- !, fold_nv(Vs, A, V).
fold_nv([_|Vs], _, V) :- fold_nv(Vs, nv, V).

% ---- body goals ----

solve_body([], Env, Env, T, T, Ch, Ch, St, St).
solve_body([G|Gs], Env0, Env, T0, T, Ch0, Ch, okst, St) :- !,
    solve_goal(G, Env0, Env1, T0, T1, Ch0, Ch1, St1),
    solve_body(Gs, Env1, Env, T1, T, Ch1, Ch, St1, St).
solve_body(_, Env, Env, T, T, Ch, Ch, failst, failst).

solve_goal(cut, Env, Env, T, T, Ch, Ch, okst).
solve_goal(failgoal, Env, Env, T, T, Ch, Ch, failst).
solve_goal(b(Nm, Ar, Args), Env0, Env, T, T, Ch, Ch, St) :-
    abs_builtin(Nm, Ar, Args, Env0, Env, St).
solve_goal(u(Nm, Ar, Args), Env0, Env, T0, T, Ch0, Ch, St) :-
    vals_of(Args, Env0, CallPat),
    run_call(Nm, Ar, CallPat, T0, T, Ch0, Ch, Succ, St0),
    propagate(St0, Succ, Args, Env0, Env, St).

propagate(failst, _, _, Env, Env, failst).
propagate(okst, Succ, Args, Env0, Env, okst) :-
    match_args(Succ, Args, Env0, Env).

% ---- builtins: success narrows arguments ----

abs_builtin(is, 2, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(<, 2, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(>, 2, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(=<, 2, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(>=, 2, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(=:=, 2, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(=\=, 2, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(tab, 1, Args, E0, E, okst) :- !, ground_all(Args, E0, E).
abs_builtin(=, 2, [A, B], E0, E, okst) :- !,
    val_of(A, E0, V1),
    val_of(B, E0, V2),
    meet(V1, V2, V),
    unify_val(V, A, E0, E1),
    unify_val(V, B, E1, E).
abs_builtin(==, 2, [A, B], E0, E, okst) :- !,
    val_of(A, E0, V1),
    val_of(B, E0, V2),
    meet(V1, V2, V),
    unify_val(V, A, E0, E1),
    unify_val(V, B, E1, E).
abs_builtin(var, 1, [A], E0, E, St) :- !, check_var(A, E0, E, St).
abs_builtin(nonvar, 1, [A], E0, E, St) :- !, check_type(A, nv, E0, E, St).
abs_builtin(atom, 1, [A], E0, E, St) :- !, check_type(A, g, E0, E, St).
abs_builtin(integer, 1, [A], E0, E, St) :- !, check_type(A, g, E0, E, St).
abs_builtin(number, 1, [A], E0, E, St) :- !, check_type(A, g, E0, E, St).
abs_builtin(atomic, 1, [A], E0, E, St) :- !, check_type(A, g, E0, E, St).
abs_builtin(compound, 1, [A], E0, E, St) :- !, check_type(A, nv, E0, E, St).
abs_builtin(functor, 3, [T, N, A], E0, E, okst) :- !,
    unify_val(nv, T, E0, E1),
    ground_all([N, A], E1, E).
abs_builtin(arg, 3, [N, T, _], E0, E, okst) :- !,
    unify_val(g, N, E0, E1),
    unify_val(nv, T, E1, E).
abs_builtin(=.., 2, [T, L], E0, E, okst) :- !,
    unify_val(nv, T, E0, E1),
    unify_val(nv, L, E1, E).
abs_builtin(_, _, _, E, E, okst).

ground_all([], E, E).
ground_all([A|As], E0, E) :-
    unify_val(g, A, E0, E1),
    ground_all(As, E1, E).

check_var('$v'(I), E0, E, St) :- !,
    val_lookup(I, E0, V),
    var_ck(V, I, E0, E, St).
check_var(_, E, E, failst).

var_ck(var, _, E, E, okst) :- !.
var_ck(any, I, E0, E, okst) :- !, env_meet(I, var, E0, E).
var_ck(_, _, E, E, failst).

check_type('$v'(I), K, E0, E, St) :- !,
    val_lookup(I, E0, V),
    type_ck(V, K, I, E0, E, St).
check_type(_, _, E, E, okst).

type_ck(var, _, _, E, E, failst) :- !.
type_ck(_, K, I, E0, E, okst) :- env_meet(I, K, E0, E).
)PL";
  // The rich domain mirrors the compiled analyzer's type system (specific
  // constants abstracted to atom/int; no aliasing tracking — early
  // Prolog-hosted analyzers' usual simplification, documented in
  // DESIGN.md): values are
  //   var, any, nv, g, const, atom, int, nil, list(E), st(F, N, Es)
  // with the term-depth cut at 4.
  static constexpr std::string_view RichSource = R"PL(
analyze_main(Table) :-
    top_goal(Name, Arity),
    mk_any_pat(Arity, Pat),
    fix_iterate(100, Name, Arity, Pat, [], Table).

mk_any_pat(0, []) :- !.
mk_any_pat(N, [any|R]) :- N1 is N - 1, mk_any_pat(N1, R).

fix_iterate(0, _, _, _, T, T).
fix_iterate(N, Name, Arity, Pat, T0, T) :-
    N > 0,
    clear_explored(T0, T1),
    run_call(Name, Arity, Pat, T1, T2, same, Ch, _, _),
    fix_more(Ch, N, Name, Arity, Pat, T2, T).

fix_more(same, _, _, _, _, T, T) :- !.
fix_more(changed, N, Name, Arity, Pat, T0, T) :-
    N1 is N - 1,
    fix_iterate(N1, Name, Arity, Pat, T0, T).

clear_explored([], []).
clear_explored([e(Nm, Ar, P, _, S)|Es], [e(Nm, Ar, P, no, S)|Rs]) :-
    clear_explored(Es, Rs).

run_call(Name, Arity, Pat, T0, T, Ch0, Ch, Succ, St) :-
    et_find(T0, Name, Arity, Pat, e(_, _, _, Explored, S0)), !,
    run_found(Explored, Name, Arity, Pat, S0, T0, T, Ch0, Ch, Succ, St).
run_call(Name, Arity, Pat, T0, T, _, Ch, Succ, St) :-
    explore_pred(Name, Arity, Pat, [e(Name, Arity, Pat, yes, none)|T0],
                 T, changed, Ch, Succ, St).

run_found(yes, _, _, _, none, T, T, Ch, Ch, [], failst) :- !.
run_found(yes, _, _, _, some(S), T, T, Ch, Ch, S, okst) :- !.
run_found(no, Name, Arity, Pat, _, T0, T, Ch0, Ch, Succ, St) :-
    et_mark_explored(T0, Name, Arity, Pat, T1),
    explore_pred(Name, Arity, Pat, T1, T, Ch0, Ch, Succ, St).

explore_pred(Name, Arity, Pat, T0, T, Ch0, Ch, Succ, St) :-
    clauses(Name, Arity, Cs), !,
    explore_clauses(Cs, Name, Arity, Pat, T0, T1, Ch0, Ch),
    finish_call(T1, Name, Arity, Pat, T, Succ, St).
explore_pred(_, _, _, T, T, Ch, Ch, [], failst).

finish_call(T, Name, Arity, Pat, T, Succ, St) :-
    et_find(T, Name, Arity, Pat, e(_, _, _, _, S)),
    succ_status(S, Succ, St).

succ_status(none, [], failst).
succ_status(some(S), S, okst).

explore_clauses([], _, _, _, T, T, Ch, Ch).
explore_clauses([c(Head, Body)|Cs], Name, Arity, Pat, T0, T, Ch0, Ch) :-
    try_clause(Head, Body, Name, Arity, Pat, T0, T1, Ch0, Ch1),
    explore_clauses(Cs, Name, Arity, Pat, T1, T, Ch1, Ch).

try_clause(Head, Body, Name, Arity, Pat, T0, T, Ch0, Ch) :-
    match_args(Pat, Head, [], Env0, okst, St0),
    try_body(St0, Body, Env0, Env, T0, T1, Ch0, Ch1, St),
    try_update(St, Head, Env, Name, Arity, Pat, T1, T, Ch1, Ch).

try_body(failst, _, Env, Env, T, T, Ch, Ch, failst) :- !.
try_body(okst, Body, Env0, Env, T0, T, Ch0, Ch, St) :-
    solve_body(Body, Env0, Env, T0, T, Ch0, Ch, okst, St).

try_update(failst, _, _, _, _, _, T, T, Ch, Ch) :- !.
try_update(okst, Head, Env, Name, Arity, Pat, T0, T, Ch0, Ch) :-
    svals(Head, Env, SPat),
    et_update(T0, Name, Arity, Pat, SPat, T, Ch0, Ch).

% ---- extension table (linear list) ----

et_find([E|_], Nm, Ar, Pat, E) :- E = e(Nm, Ar, Pat, _, _), !.
et_find([_|Es], Nm, Ar, Pat, E) :- et_find(Es, Nm, Ar, Pat, E).

et_mark_explored([e(Nm, Ar, Pat, _, S)|Es], Nm, Ar, Pat,
                 [e(Nm, Ar, Pat, yes, S)|Es]) :- !.
et_mark_explored([E|Es], Nm, Ar, Pat, [E|Rs]) :-
    et_mark_explored(Es, Nm, Ar, Pat, Rs).

et_update([e(Nm, Ar, Pat, Ex, S0)|Es], Nm, Ar, Pat, SPat,
          [e(Nm, Ar, Pat, Ex, some(S1))|Es], Ch0, Ch) :- !,
    lub_update(S0, SPat, S1, Ch0, Ch).
et_update([E|Es], Nm, Ar, Pat, SPat, [E|Rs], Ch0, Ch) :-
    et_update(Es, Nm, Ar, Pat, SPat, Rs, Ch0, Ch).

lub_update(none, S, S, _, changed) :- !.
lub_update(some(S0), S, S1, Ch0, Ch) :-
    lub_list(S0, S, S1),
    lub_changed(S0, S1, Ch0, Ch).

lub_changed(S0, S1, Ch, Ch) :- S0 == S1, !.
lub_changed(_, _, _, changed).

lub_list([], [], []).
lub_list([A|As], [B|Bs], [C|Cs]) :- lub(A, B, C), lub_list(As, Bs, Cs).

% ---- the domain: meet ----

meet(bot, _, bot) :- !.
meet(_, bot, bot) :- !.
meet(var, X, X) :- !.
meet(X, var, X) :- !.
meet(any, X, X) :- !.
meet(X, any, X) :- !.
meet(nv, X, X) :- !.
meet(X, nv, X) :- !.
meet(g, X, R) :- !, meet_g(X, R).
meet(X, g, R) :- !, meet_g(X, R).
meet(const, X, R) :- !, meet_const(X, R).
meet(X, const, R) :- !, meet_const(X, R).
meet(atom, X, R) :- !, meet_atom(X, R).
meet(X, atom, R) :- !, meet_atom(X, R).
meet(int, X, R) :- !, meet_int(X, R).
meet(X, int, R) :- !, meet_int(X, R).
meet(nil, X, R) :- !, meet_nil(X, R).
meet(X, nil, R) :- !, meet_nil(X, R).
meet(list(A), list(B), R) :- !, meet_elem(A, B, R).
meet(st(F, N, As), st(F, N, Bs), R) :- !, meet_args(As, Bs, [], R, F, N).
meet(_, _, bot).

meet_g(g, g) :- !.
meet_g(const, const) :- !.
meet_g(atom, atom) :- !.
meet_g(int, int) :- !.
meet_g(nil, nil) :- !.
meet_g(list(E), R) :- !, meet_elem(E, g, R).
meet_g(st(F, N, Es), R) :- meet_all_g(Es, [], R, F, N).

meet_all_g([], Acc, st(F, N, Rs), F, N) :- rev_acc(Acc, [], Rs).
meet_all_g([E|Es], Acc, R, F, N) :-
    meet(E, g, M),
    meet_all_g_k(M, Es, Acc, R, F, N).
meet_all_g_k(bot, _, _, bot, _, _) :- !.
meet_all_g_k(M, Es, Acc, R, F, N) :- meet_all_g(Es, [M|Acc], R, F, N).

meet_const(const, const) :- !.
meet_const(atom, atom) :- !.
meet_const(int, int) :- !.
meet_const(nil, nil) :- !.
meet_const(list(_), nil) :- !.
meet_const(_, bot).

meet_atom(atom, atom) :- !.
meet_atom(nil, nil) :- !.
meet_atom(list(_), nil) :- !.
meet_atom(_, bot).

meet_int(int, int) :- !.
meet_int(_, bot).

meet_nil(nil, nil) :- !.
meet_nil(list(_), nil) :- !.
meet_nil(_, bot).

meet_elem(A, B, R) :- meet(A, B, M), meet_elem_k(M, R).
meet_elem_k(bot, nil) :- !.
meet_elem_k(M, list(M)).

meet_args([], [], Acc, st(F, N, Rs), F, N) :- rev_acc(Acc, [], Rs).
meet_args([A|As], [B|Bs], Acc, R, F, N) :-
    meet(A, B, M),
    meet_args_k(M, As, Bs, Acc, R, F, N).
meet_args_k(bot, _, _, _, bot, _, _) :- !.
meet_args_k(M, As, Bs, Acc, R, F, N) :- meet_args(As, Bs, [M|Acc], R, F, N).

rev_acc([], R, R).
rev_acc([X|Xs], A, R) :- rev_acc(Xs, [X|A], R).

% ---- the domain: lub ----

lub(X, X, X) :- !.
lub(var, _, any) :- !.
lub(_, var, any) :- !.
lub(any, _, any) :- !.
lub(_, any, any) :- !.
lub(nv, _, nv) :- !.
lub(_, nv, nv) :- !.
lub(g, X, R) :- !, lub_gjoin(X, R).
lub(X, g, R) :- !, lub_gjoin(X, R).
lub(list(A), list(B), list(C)) :- !, lub(A, B, C).
lub(nil, list(E), list(E)) :- !.
lub(list(E), nil, list(E)) :- !.
lub(st(F, N, As), st(F, N, Bs), st(F, N, Cs)) :- !, lub_args(As, Bs, Cs).
lub(const, X, R) :- !, lub_cjoin(X, R).
lub(X, const, R) :- !, lub_cjoin(X, R).
lub(atom, int, const) :- !.
lub(int, atom, const) :- !.
lub(atom, nil, atom) :- !.
lub(nil, atom, atom) :- !.
lub(int, nil, const) :- !.
lub(nil, int, const) :- !.
lub(A, B, g) :- ground_val(A), ground_val(B), !.
lub(_, _, nv).

lub_args([], [], []).
lub_args([A|As], [B|Bs], [C|Cs]) :- lub(A, B, C), lub_args(As, Bs, Cs).

lub_gjoin(X, g) :- ground_val(X), !.
lub_gjoin(_, nv).

lub_cjoin(atom, const) :- !.
lub_cjoin(int, const) :- !.
lub_cjoin(nil, const) :- !.
lub_cjoin(X, g) :- ground_val(X), !.
lub_cjoin(_, nv).

ground_val(g).
ground_val(const).
ground_val(atom).
ground_val(int).
ground_val(nil).
ground_val(list(E)) :- ground_val(E).
ground_val(st(_, _, Es)) :- ground_all_vals(Es).

ground_all_vals([]).
ground_all_vals([E|Es]) :- ground_val(E), ground_all_vals(Es).

% ---- abstract head unification over reflected terms ----

match_args([], [], Env, Env, St, St).
match_args([V|Vs], [T|Ts], Env0, Env, okst, St) :- !,
    u_val(V, T, Env0, Env1, St1),
    match_args(Vs, Ts, Env1, Env, St1, St).
match_args(_, _, Env, Env, failst, failst).

u_val(V, '$v'(I), Env0, Env, St) :- !, env_meet(I, V, Env0, Env, St).
u_val(V, [], Env, Env, St) :- !, chk(V, nil, St).
u_val(V, T, Env, Env, St) :- integer(T), !, chk(V, int, St).
u_val(V, T, Env, Env, St) :- atomic(T), !, chk(V, atom, St).
u_val(V, [H|T2], Env0, Env, St) :- !,
    cons_parts(V, Hv, Tv, St0),
    u_pair(St0, Hv, H, Tv, T2, Env0, Env, St).
u_val(V, T, Env0, Env, St) :-
    T =.. [F|Args],
    len(Args, N),
    struct_parts(V, F, N, SubVs, St0),
    u_list(St0, SubVs, Args, Env0, Env, St).

u_pair(failst, _, _, _, _, Env, Env, failst) :- !.
u_pair(okst, Hv, H, Tv, T2, Env0, Env, St) :-
    u_val(Hv, H, Env0, Env1, St1),
    u_tail(St1, Tv, T2, Env1, Env, St).
u_tail(failst, _, _, Env, Env, failst) :- !.
u_tail(okst, Tv, T2, Env0, Env, St) :- u_val(Tv, T2, Env0, Env, St).

u_list(failst, _, _, Env, Env, failst) :- !.
u_list(okst, [], [], Env, Env, okst) :- !.
u_list(okst, [V|Vs], [T|Ts], Env0, Env, St) :-
    u_val(V, T, Env0, Env1, St1),
    u_list(St1, Vs, Ts, Env1, Env, St).

chk(V, K, St) :- meet(V, K, M), chk_k(M, St).
chk_k(bot, failst) :- !.
chk_k(_, okst).

cons_parts(var, var, var, okst) :- !.
cons_parts(any, any, any, okst) :- !.
cons_parts(nv, any, any, okst) :- !.
cons_parts(g, g, g, okst) :- !.
cons_parts(list(E), E, list(E), okst) :- !.
cons_parts(_, _, _, failst).

struct_parts(var, _, N, Vs, okst) :- !, fill_val(N, var, Vs).
struct_parts(any, _, N, Vs, okst) :- !, fill_val(N, any, Vs).
struct_parts(nv, _, N, Vs, okst) :- !, fill_val(N, any, Vs).
struct_parts(g, _, N, Vs, okst) :- !, fill_val(N, g, Vs).
struct_parts(st(F, N, Vs), F, N, Vs, okst) :- !.
struct_parts(_, _, _, [], failst).

fill_val(0, _, []) :- !.
fill_val(N, V, [V|Vs]) :- N1 is N - 1, fill_val(N1, V, Vs).

len([], 0).
len([_|Xs], N) :- len(Xs, M), N is M + 1.

% ---- environments ----

env_meet(I, V, Env0, Env, St) :-
    env_get(Env0, I, Old), !,
    meet(Old, V, New),
    env_upd(New, I, Env0, Env, St).
env_meet(I, V, Env0, Env, St) :-
    meet(var, V, V1),
    env_new(V1, I, Env0, Env, St).

env_upd(bot, _, Env, Env, failst) :- !.
env_upd(New, I, Env0, Env, okst) :- env_set(Env0, I, New, Env).

env_new(bot, _, Env, Env, failst) :- !.
env_new(V, I, Env, [I - V|Env], okst).

env_get([I - V|_], I, V) :- !.
env_get([_|E], I, V) :- env_get(E, I, V).

env_set([I - _|E], I, V, [I - V|E]) :- !.
env_set([P|E], I, V, [P|E1]) :- env_set(E, I, V, E1).

% ---- abstracting values (term-depth cut at 4) ----

svals([], _, []).
svals([T|Ts], Env, [V|Vs]) :- val_of(T, Env, 4, V), svals(Ts, Env, Vs).

val_of('$v'(I), Env, _, V) :- !, val_lookup(I, Env, V).
val_of([], _, _, nil) :- !.
val_of(T, _, _, int) :- integer(T), !.
val_of(T, _, _, atom) :- atomic(T), !.
val_of([H|T2], Env, D, V) :- !,
    D1 is D - 1,
    val_of(H, Env, D1, Hv),
    val_of(T2, Env, D1, Tv),
    cons_val(Hv, Tv, V).
val_of(T, Env, D, V) :- D =< 1, !, widen_term(T, Env, V).
val_of(T, Env, D, st(F, N, Vs)) :-
    T =.. [F|Args],
    len(Args, N),
    D1 is D - 1,
    vals_at(Args, Env, D1, Vs).

vals_at([], _, _, []).
vals_at([T|Ts], Env, D, [V|Vs]) :-
    val_of(T, Env, D, V),
    vals_at(Ts, Env, D, Vs).

val_lookup(I, Env, V) :- env_get(Env, I, V0), !, V = V0.
val_lookup(_, _, var).

cons_val(Hv, nil, list(Hv)) :- !.
cons_val(Hv, list(E), list(V)) :- !, lub(Hv, E, V).
cons_val(_, _, nv).

widen_term(T, Env, V) :- term_ground(T, Env), !, V = g.
widen_term(_, _, nv).

term_ground('$v'(I), Env) :- !, val_lookup(I, Env, V), ground_val(V).
term_ground(T, _) :- atomic(T), !.
term_ground(T, Env) :- T =.. [_|Args], args_ground(Args, Env).

args_ground([], _).
args_ground([A|As], Env) :- term_ground(A, Env), args_ground(As, Env).

% ---- body goals ----

solve_body([], Env, Env, T, T, Ch, Ch, St, St).
solve_body([G|Gs], Env0, Env, T0, T, Ch0, Ch, okst, St) :- !,
    solve_goal(G, Env0, Env1, T0, T1, Ch0, Ch1, St1),
    solve_body(Gs, Env1, Env, T1, T, Ch1, Ch, St1, St).
solve_body(_, Env, Env, T, T, Ch, Ch, failst, failst).

solve_goal(cut, Env, Env, T, T, Ch, Ch, okst).
solve_goal(failgoal, Env, Env, T, T, Ch, Ch, failst).
solve_goal(b(Nm, Ar, Args), Env0, Env, T, T, Ch, Ch, St) :-
    abs_builtin(Nm, Ar, Args, Env0, Env, St).
solve_goal(u(Nm, Ar, Args), Env0, Env, T0, T, Ch0, Ch, St) :-
    svals(Args, Env0, CallPat),
    run_call(Nm, Ar, CallPat, T0, T, Ch0, Ch, Succ, St0),
    propagate(St0, Succ, Args, Env0, Env, St).

propagate(failst, _, _, Env, Env, failst).
propagate(okst, Succ, Args, Env0, Env, St) :-
    match_args(Succ, Args, Env0, Env, okst, St).

% ---- builtins ----

abs_builtin(is, 2, [L, R], E0, E, St) :- !,
    u_val(int, L, E0, E1, St1),
    b_then(St1, g, R, E1, E, St).
abs_builtin(<, 2, Args, E0, E, St) :- !, ground_args(Args, E0, E, St).
abs_builtin(>, 2, Args, E0, E, St) :- !, ground_args(Args, E0, E, St).
abs_builtin(=<, 2, Args, E0, E, St) :- !, ground_args(Args, E0, E, St).
abs_builtin(>=, 2, Args, E0, E, St) :- !, ground_args(Args, E0, E, St).
abs_builtin(=:=, 2, Args, E0, E, St) :- !, ground_args(Args, E0, E, St).
abs_builtin(=\=, 2, Args, E0, E, St) :- !, ground_args(Args, E0, E, St).
abs_builtin(tab, 1, Args, E0, E, St) :- !, ground_args(Args, E0, E, St).
abs_builtin(=, 2, [A, B], E0, E, St) :- !, abs_unify(A, B, E0, E, St).
abs_builtin(==, 2, [A, B], E0, E, St) :- !, abs_unify(A, B, E0, E, St).
abs_builtin(var, 1, [A], E0, E, St) :- !, check_var(A, E0, E, St).
abs_builtin(nonvar, 1, [A], E0, E, St) :- !, check_type(A, nv, E0, E, St).
abs_builtin(atom, 1, [A], E0, E, St) :- !, check_type(A, atom, E0, E, St).
abs_builtin(integer, 1, [A], E0, E, St) :- !, check_type(A, int, E0, E, St).
abs_builtin(number, 1, [A], E0, E, St) :- !, check_type(A, int, E0, E, St).
abs_builtin(atomic, 1, [A], E0, E, St) :- !,
    check_type(A, const, E0, E, St).
abs_builtin(compound, 1, [A], E0, E, St) :- !, check_type(A, nv, E0, E, St).
abs_builtin(functor, 3, [T, N, A], E0, E, St) :- !,
    u_val(nv, T, E0, E1, St1),
    b_then2(St1, const, N, int, A, E1, E, St).
abs_builtin(arg, 3, [N, T, _], E0, E, St) :- !,
    u_val(int, N, E0, E1, St1),
    b_then(St1, nv, T, E1, E, St).
abs_builtin(=.., 2, [T, L], E0, E, St) :- !,
    u_val(nv, T, E0, E1, St1),
    b_then(St1, list(any), L, E1, E, St).
abs_builtin(_, _, _, E, E, okst).

b_then(failst, _, _, E, E, failst) :- !.
b_then(okst, V, T, E0, E, St) :- u_val(V, T, E0, E, St).

b_then2(failst, _, _, _, _, E, E, failst) :- !.
b_then2(okst, V1, T1, V2, T2, E0, E, St) :-
    u_val(V1, T1, E0, E1, St1),
    b_then(St1, V2, T2, E1, E, St).

ground_args([], E, E, okst).
ground_args([A|As], E0, E, St) :-
    u_val(g, A, E0, E1, St1),
    ga_more(St1, As, E1, E, St).
ga_more(failst, _, E, E, failst) :- !.
ga_more(okst, As, E0, E, St) :- ground_args(As, E0, E, St).

abs_unify(A, B, E0, E, St) :-
    val_of(A, E0, 4, V1),
    val_of(B, E0, 4, V2),
    meet(V1, V2, V),
    abs_unify_k(V, A, B, E0, E, St).
abs_unify_k(bot, _, _, E, E, failst) :- !.
abs_unify_k(V, A, B, E0, E, St) :-
    u_val(V, A, E0, E1, St1),
    b_then(St1, V, B, E1, E, St).

check_var('$v'(I), E0, E, St) :- !,
    val_lookup(I, E0, V),
    var_ck(V, I, E0, E, St).
check_var(_, E, E, failst).

var_ck(var, _, E, E, okst) :- !.
var_ck(any, I, E0, E, okst) :- !, env_set_add(I, var, E0, E).
var_ck(_, _, E, E, failst).

env_set_add(I, V, E0, E) :- env_get(E0, I, _), !, env_set(E0, I, V, E).
env_set_add(I, V, E0, [I - V|E0]).

check_type('$v'(I), K, E0, E, St) :- !,
    val_lookup(I, E0, V),
    type_ck(V, K, I, E0, E, St).
check_type(_, _, E, E, okst).

type_ck(var, _, _, E, E, failst) :- !.
type_ck(V, K, I, E0, E, St) :-
    meet(V, K, M),
    type_ck_k(M, I, E0, E, St).
type_ck_k(bot, _, E, E, failst) :- !.
type_ck_k(M, I, E0, E, okst) :- env_set_add(I, M, E0, E).
)PL";

  return D == PrologDomain::Coarse ? Source : RichSource;
}

Result<PrologHostedResult> awam::runPrologHostedAnalysis(
    const ParsedProgram &Program, SymbolTable &Syms,
    std::string_view EntryName, PrologDomain D) {
  std::string Source = reflectProgram(Program, Syms, EntryName);
  Source += prologAnalyzerSource(D);

  TermArena Arena;
  Result<ParsedProgram> Parsed = parseProgram(Source, Syms, Arena);
  if (!Parsed)
    return makeError("hosted analyzer parse error: " + Parsed.diag().str());
  Result<CompiledProgram> Compiled = compileProgram(*Parsed, Syms);
  if (!Compiled)
    return makeError("hosted analyzer compile error: " +
                     Compiled.diag().str());

  Machine M(*Compiled);
  Parser GoalParser("analyze_main(T)", Syms, Arena);
  Result<const Term *> Goal = GoalParser.readTerm();
  if (!Goal)
    return Goal.diag();

  std::vector<Solution> Sols;
  TermArena SolArena;
  RunStatus Status =
      M.solve(*Goal, GoalParser.lastTermNumVars(), SolArena, Sols, 1);
  if (Status == RunStatus::Error)
    return makeError("hosted analyzer run error: " + M.errorMessage());
  if (Status != RunStatus::Success || Sols.empty())
    return makeError("hosted analyzer failed to produce a table");

  PrologHostedResult Out;
  Out.HostInstructions = M.stepsExecuted();
  if (!Sols[0].Bindings.empty() && Sols[0].Bindings[0])
    Out.Table = writeTerm(Sols[0].Bindings[0], Syms);
  return Out;
}
