//===- baseline/MetaAnalyzer.cpp ------------------------------------------===//

#include "baseline/MetaAnalyzer.h"

#include "absdom/AbsBuiltins.h"
#include "absdom/AbsOps.h"
#include "compiler/Builtins.h"

using namespace awam;

MetaAnalyzer::MetaAnalyzer(const ParsedProgram &Program, SymbolTable &Syms,
                           AnalyzerOptions Options)
    : Program(Program), Syms(Syms), Options(Options) {
  Table = ExtensionTable(Options.TableImpl);
  for (const ParsedClause &C : Program.Clauses) {
    Symbol Name = C.Head->functor();
    int Arity = C.Head->isStruct() ? C.Head->arity() : 0;
    auto [It, New] = PredIndex.try_emplace({Name, Arity},
                                           static_cast<int>(Preds.size()));
    if (New) {
      PredClauses P;
      P.Label =
          std::string(Syms.name(Name)) + "/" + std::to_string(Arity);
      Preds.push_back(std::move(P));
    }
    Preds[It->second].Clauses.push_back(&C);
  }
}

bool MetaAnalyzer::analyzeCall(int PredIdx, const std::vector<Cell> &Args) {
  if (++Reductions > IterationBudget) {
    BudgetExceeded = true;
    return false;
  }
  Pattern CPat = canonicalize(St, Args, Options.DepthLimit,
                              /*WidenConstants=*/true);
  bool Created = false;
  ETEntry &Entry = Table.findOrCreate(PredIdx, CPat, Created);
  if (Created)
    Changed = true;

  auto returnViaTable = [&]() {
    if (!Entry.Success)
      return false;
    std::vector<int64_t> Roots = instantiate(St, *Entry.Success);
    for (size_t I = 0; I != Roots.size(); ++I)
      if (!absUnify(St, Args[I], Cell::ref(Roots[I])))
        return false;
    return true;
  };

  if (Entry.Explored)
    return returnViaTable();
  Entry.Explored = true;
  ++Activations;

  int64_t TrailMark = St.trailMark();
  int64_t HeapMark = St.heapTop();
  for (const ParsedClause *C : Preds[PredIdx].Clauses) {
    if (BudgetExceeded)
      return false;
    St.unwind(TrailMark);
    St.truncate(HeapMark);

    // Fresh instance of the calling pattern for this clause trial.
    std::vector<int64_t> CalleeArgs = instantiate(St, Entry.Call);

    // Rename the clause apart by building head terms from the AST, then
    // run one general abstract unification per head argument — this is the
    // interpretive step compilation specializes away.
    std::unordered_map<int, int64_t> VarMap;
    bool Ok = true;
    int Arity = C->Head->isStruct() ? C->Head->arity() : 0;
    for (int I = 0; I != Arity && Ok; ++I) {
      int64_t HeadArg = St.buildTerm(C->Head->arg(I), VarMap);
      Ok = absUnify(St, Cell::ref(CalleeArgs[I]), Cell::ref(HeadArg));
    }
    if (Ok)
      Ok = solveGoals(*C, VarMap);
    if (!Ok)
      continue; // artificial or real failure: next clause

    // updateET: abstract the callee arguments and lub into the table.
    std::vector<Cell> Cells;
    for (int64_t A : CalleeArgs)
      Cells.push_back(Cell::ref(A));
    Pattern SPat = canonicalize(St, Cells, Options.DepthLimit);
    if (Entry.Success) {
      if (!(SPat == *Entry.Success)) {
        Pattern Merged =
            lubPatterns(*Entry.Success, SPat, Options.DepthLimit);
        if (!(Merged == *Entry.Success)) {
          Entry.Success = std::move(Merged);
          Changed = true;
        }
      }
    } else {
      Entry.Success = std::move(SPat);
      Changed = true;
    }
  }

  // All clauses explored: lookupET.
  St.unwind(TrailMark);
  St.truncate(HeapMark);
  return returnViaTable();
}

bool MetaAnalyzer::solveGoals(const ParsedClause &Clause,
                              std::unordered_map<int, int64_t> &VarMap) {
  for (const Term *G : Clause.Body) {
    if (BudgetExceeded)
      return false;
    if (G->isAtom() && G->functor() == SymbolTable::SymCut)
      continue; // cut ignored, as in the compiled analyzer
    if (G->isAtom() && G->functor() == SymbolTable::SymFail)
      return false;
    if (!G->isCallable())
      return false;

    int Arity = G->isStruct() ? G->arity() : 0;
    std::vector<Cell> Args;
    Args.reserve(Arity);
    for (int I = 0; I != Arity; ++I)
      Args.push_back(Cell::ref(St.buildTerm(G->arg(I), VarMap)));

    if (std::optional<BuiltinId> B =
            lookupBuiltin(Syms.name(G->functor()), Arity)) {
      ++Reductions;
      if (!applyAbsBuiltin(St, *B, Args))
        return false;
      continue;
    }
    auto It = PredIndex.find({G->functor(), Arity});
    if (It == PredIndex.end())
      return false; // undefined predicate fails
    if (!analyzeCall(It->second, Args))
      return false;
  }
  return true;
}

bool MetaAnalyzer::runIteration(int PredIdx, const Pattern &Entry) {
  St.reset();
  Table.beginIteration();
  IterationBudget = Options.MaxSteps;
  Reductions = 0;

  std::vector<Cell> Args;
  for (int64_t A : instantiate(St, Entry))
    Args.push_back(Cell::ref(A));
  // The top-level call drives exploration exactly like any other call.
  // (Entry.Explored is still false, so analyzeCall explores the clauses.)
  analyzeCall(PredIdx, Args);
  return !BudgetExceeded;
}

Result<AnalysisResult> MetaAnalyzer::analyze(std::string_view Name,
                                             const Pattern &Entry) {
  Symbol S = Syms.lookup(Name);
  int Arity = static_cast<int>(Entry.Roots.size());
  auto It = S == ~0u ? PredIndex.end() : PredIndex.find({S, Arity});
  if (It == PredIndex.end()) {
    std::vector<std::pair<std::string, int>> Defined;
    for (const auto &[Key, Idx] : PredIndex)
      Defined.emplace_back(std::string(Syms.name(Key.first)), Key.second);
    return makeError(
        undefinedPredicateMessage("entry", Name, Arity, Defined));
  }

  Table = ExtensionTable(Options.TableImpl);
  Activations = 0;
  AnalysisResult R;
  uint64_t TotalReductions = 0;
  for (int Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    Changed = false;
    BudgetExceeded = false;
    if (!runIteration(It->second, Entry))
      return makeError("baseline analyzer budget exceeded");
    TotalReductions += Reductions;
    ++R.Iterations;
    if (!Changed) {
      R.Converged = true;
      break;
    }
  }
  Reductions = TotalReductions;
  R.Instructions = TotalReductions;
  R.TableProbes = Table.probeCount();
  R.Counters.Instructions = R.Instructions;
  R.Counters.ETProbes = R.TableProbes;
  R.Counters.ActivationRuns = Activations;
  for (const ETEntry &E : Table.entries())
    R.Items.push_back({-1, Preds[E.PredId].Label, E.Call, E.Success});
  return R;
}

Result<AnalysisResult> MetaAnalyzer::analyze(std::string_view EntrySpec) {
  Result<std::pair<std::string, Pattern>> Parsed = parseEntrySpec(EntrySpec);
  if (!Parsed)
    return Parsed.diag();
  return analyze(Parsed->first, Parsed->second);
}

namespace {
/// The baseline as a session backend (see makeBaselineSession).
class MetaBackend final : public AnalysisSession::Backend {
public:
  MetaBackend(const ParsedProgram &Program, SymbolTable &Syms,
              AnalyzerOptions Options)
      : Meta(Program, Syms, Options) {}

  Result<AnalysisResult> analyze(std::string_view Name,
                                 const Pattern &Entry) override {
    return Meta.analyze(Name, Entry);
  }

private:
  MetaAnalyzer Meta;
};
} // namespace

AnalysisSession awam::makeBaselineSession(const ParsedProgram &Program,
                                          SymbolTable &Syms,
                                          AnalyzerOptions Options) {
  return AnalysisSession(std::make_unique<MetaBackend>(Program, Syms,
                                                       Options),
                         Options);
}
