//===- baseline/PrologHosted.h - Prolog-hosted analyzer ---------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The historically faithful baseline: a dataflow analyzer *written in
/// Prolog* and executed by our concrete WAM, standing in for the Aquarius
/// analyzer running under Quintus Prolog (Table 1's baseline column).
///
/// The paper states that all previous global dataflow analyzers for logic
/// programs were implemented on top of Prolog, and attributes most of its
/// speedup to removing that hosting: interpretive overhead plus the cost
/// of manipulating the global extension table in Prolog. This component
/// recreates that setup:
///
///  * the program under analysis is reflected into data (clause/3 facts
///    with variables numbered as '$v'(I));
///  * a mode/groundness analyzer (domain var < g,nv < any — a simplified
///    domain like Aquarius's, which the paper notes was "considerably"
///    simpler than its own) is appended as Prolog source;
///  * the combined program runs on the concrete WAM; the extension table
///    is threaded as a linear Prolog list, the implementation the paper
///    calls "expensive ... because it is an inherently global data
///    structure".
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_BASELINE_PROLOGHOSTED_H
#define AWAM_BASELINE_PROLOGHOSTED_H

#include "support/Error.h"
#include "term/Parser.h"

#include <string>

namespace awam {

/// Generates the reflected data encoding of \p Program: top_goal/3 plus one
/// clauses/3 fact per predicate (clause heads/bodies as ground data with
/// '$v'(I) variables; body goals tagged u/3, b/3, cut, failgoal).
std::string reflectProgram(const ParsedProgram &Program,
                           const SymbolTable &Syms,
                           std::string_view EntryName);

/// Domain used by the hosted analyzer.
enum class PrologDomain {
  Coarse, ///< var / g / nv / any — a minimal mode analysis
  Rich,   ///< adds const/atom/int/nil, alpha-lists and struct types with
          ///< the term-depth cut: comparable in precision class to the
          ///< compiled analyzer's domain (minus aliasing; documented)
};

/// Returns the Prolog source of the mode analyzer itself.
std::string_view prologAnalyzerSource(PrologDomain D = PrologDomain::Rich);

/// Result of one Prolog-hosted analysis run.
struct PrologHostedResult {
  /// Rendered final table: lines "pred/arity call -> success".
  std::string Table;
  /// Concrete WAM instructions executed by the hosted analyzer.
  uint64_t HostInstructions = 0;
};

/// Runs the Prolog-hosted analyzer over \p Program on the concrete WAM.
/// \p EntryName must name a 0-ary predicate (the benchmarks use "main").
Result<PrologHostedResult> runPrologHostedAnalysis(
    const ParsedProgram &Program, SymbolTable &Syms,
    std::string_view EntryName, PrologDomain D = PrologDomain::Rich);

} // namespace awam

#endif // AWAM_BASELINE_PROLOGHOSTED_H
