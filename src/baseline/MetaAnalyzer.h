//===- baseline/MetaAnalyzer.h - Meta-interpreting analyzer -----*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper argues against: a *meta-interpreting* abstract
/// analyzer. It implements exactly the same analysis as the compiled
/// abstract WAM — same domain, same extension-table control scheme, same
/// builtin semantics — but interprets the source clauses directly:
///
///  * each clause trial renames the clause by building its head terms from
///    the AST on the heap and running one general abstract unification per
///    head argument (no specialized get/unify instructions);
///  * body goals are dispatched by walking the AST (no compiled code);
///  * no first-argument indexing, no register allocation.
///
/// This is the interpretive overhead the paper's compilation removes
/// (stand-in for the Prolog-hosted Aquarius analyzer of Table 1; see
/// DESIGN.md, substitution 1). Both analyzers must compute identical
/// extension tables — tests/CrossValidationTest.cpp checks that.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_BASELINE_METAANALYZER_H
#define AWAM_BASELINE_METAANALYZER_H

#include "analyzer/Session.h"
#include "term/Parser.h"

namespace awam {

/// The meta-interpreting dataflow analyzer.
class MetaAnalyzer {
public:
  /// \p Program must outlive the analyzer. \p Syms is the shared symbol
  /// table used when parsing the program.
  MetaAnalyzer(const ParsedProgram &Program, SymbolTable &Syms,
               AnalyzerOptions Options = {});

  /// Analyzes from an entry spec like "nrev(glist, var)"; see
  /// parseEntrySpec. The result Items carry PredId = -1 (the baseline has
  /// no compiled predicate table) but the same labels and patterns as the
  /// compiled analyzer.
  Result<AnalysisResult> analyze(std::string_view EntrySpec);
  Result<AnalysisResult> analyze(std::string_view Name,
                                 const Pattern &Entry);

  /// Number of goal reductions performed (all iterations).
  uint64_t reductions() const { return Reductions; }

  /// Activation replays performed (all iterations) — comparable to the
  /// compiled machine's activationsExplored().
  uint64_t activations() const { return Activations; }

private:
  struct PredClauses {
    std::string Label;
    std::vector<const ParsedClause *> Clauses;
  };

  /// One fixpoint iteration; returns false on resource errors.
  bool runIteration(int PredIdx, const Pattern &Entry);
  bool analyzeCall(int PredIdx, const std::vector<Cell> &Args);
  bool solveGoals(const ParsedClause &Clause,
                  std::unordered_map<int, int64_t> &VarMap);

  const ParsedProgram &Program;
  SymbolTable &Syms;
  AnalyzerOptions Options;

  std::vector<PredClauses> Preds;
  std::map<std::pair<Symbol, int>, int> PredIndex;

  Store St;
  ExtensionTable Table{ExtensionTable::Impl::LinearList};
  bool Changed = false;
  bool BudgetExceeded = false;
  uint64_t Reductions = 0;
  uint64_t Activations = 0;
  uint64_t IterationBudget = 0;
};

/// Wraps the meta-interpreting baseline as an AnalysisSession so every
/// client drives both analyzers through the same façade. The referenced
/// program and symbol table must outlive the session. The Driver option
/// is ignored — the baseline is inherently the naive restart loop.
AnalysisSession makeBaselineSession(const ParsedProgram &Program,
                                    SymbolTable &Syms,
                                    AnalyzerOptions Options = {});

} // namespace awam

#endif // AWAM_BASELINE_METAANALYZER_H
