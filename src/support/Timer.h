//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic timing utilities for the benchmark harness. The paper reports
/// analysis times with a 0.1 msec resolution averaged over 100-1000
/// iterations; measureMs implements that protocol (adaptive repetition until
/// a minimum total run time is reached).
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_SUPPORT_TIMER_H
#define AWAM_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace awam {

/// A simple start/elapsed wall-clock stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed milliseconds since construction or the last reset().
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p Fn repeatedly until at least \p MinTotalMs of wall time has been
/// spent (but at least \p MinIters and at most \p MaxIters runs), and returns
/// the average per-run time in milliseconds.
template <typename Fn>
double measureMs(Fn &&Fn_, double MinTotalMs = 200.0, int MinIters = 3,
                 int MaxIters = 1000) {
  // Warm-up run (paging, allocator growth) is excluded from the average.
  Fn_();
  Timer T;
  int Iters = 0;
  do {
    Fn_();
    ++Iters;
  } while (Iters < MaxIters &&
           (Iters < MinIters || T.elapsedMs() < MinTotalMs));
  return T.elapsedMs() / Iters;
}

} // namespace awam

#endif // AWAM_SUPPORT_TIMER_H
