//===- support/Error.h - Lightweight recoverable-error type -----*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Result/Err types used for recoverable errors (malformed source
/// programs, resource limits). The library does not use exceptions;
/// programmatic errors are asserts.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_SUPPORT_ERROR_H
#define AWAM_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace awam {

/// A diagnostic with a source position (1-based line/column; 0 = unknown).
struct Diagnostic {
  std::string Message;
  int Line = 0;
  int Column = 0;

  /// Renders "line L, column C: message" (or just the message when the
  /// position is unknown).
  std::string str() const {
    if (Line == 0)
      return Message;
    return "line " + std::to_string(Line) + ", column " +
           std::to_string(Column) + ": " + Message;
  }
};

/// Result of a fallible operation: either a value or a Diagnostic.
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Result(Diagnostic D) : Diag(std::move(D)) {}

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "accessing value of failed Result");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "accessing value of failed Result");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// The diagnostic of a failed Result.
  const Diagnostic &diag() const {
    assert(!Value && "diag() on successful Result");
    return Diag;
  }

  /// Moves the value out of a successful Result.
  T take() {
    assert(Value && "take() on failed Result");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Diagnostic Diag;
};

/// Creates a failed Result diagnostic in one expression.
inline Diagnostic makeError(std::string Message, int Line = 0,
                            int Column = 0) {
  return Diagnostic{std::move(Message), Line, Column};
}

} // namespace awam

#endif // AWAM_SUPPORT_ERROR_H
