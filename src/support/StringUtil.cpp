//===- support/StringUtil.cpp ---------------------------------------------===//

#include "support/StringUtil.h"

#include <cctype>
#include <cstdio>

using namespace awam;

std::string awam::padLeft(std::string_view S, size_t Width) {
  std::string Out;
  if (S.size() < Width)
    Out.append(Width - S.size(), ' ');
  Out.append(S);
  return Out;
}

std::string awam::padRight(std::string_view S, size_t Width) {
  std::string Out(S);
  if (Out.size() < Width)
    Out.append(Width - Out.size(), ' ');
  return Out;
}

std::string awam::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

static bool isSymbolChar(char C) {
  static constexpr std::string_view SymbolChars = "+-*/\\^<>=~:.?@#&$";
  return SymbolChars.find(C) != std::string_view::npos;
}

bool awam::isUnquotedAtom(std::string_view Name) {
  if (Name.empty())
    return false;
  if (Name == "[]" || Name == "{}" || Name == "!" || Name == ";")
    return true;
  if (std::islower(static_cast<unsigned char>(Name[0]))) {
    for (char C : Name)
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
        return false;
    return true;
  }
  for (char C : Name)
    if (!isSymbolChar(C))
      return false;
  return true;
}

std::string awam::quoteAtom(std::string_view Name) {
  if (isUnquotedAtom(Name))
    return std::string(Name);
  std::string Out = "'";
  for (char C : Name) {
    if (C == '\'' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  Out.push_back('\'');
  return Out;
}

TextTable::TextTable(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TextTable::addSeparator() { Rows.push_back({}); }

std::string TextTable::str() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto renderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (size_t I = 0; I != Headers.size(); ++I) {
      std::string_view Cell = I < Cells.size() ? Cells[I] : std::string_view();
      Line += " " + padLeft(Cell, Widths[I]) + " |";
    }
    return Line + "\n";
  };
  auto renderSep = [&]() {
    std::string Line = "|";
    for (size_t W : Widths)
      Line += std::string(W + 2, '-') + "|";
    return Line + "\n";
  };

  std::string Out = renderRow(Headers);
  Out += renderSep();
  for (const auto &Row : Rows)
    Out += Row.empty() ? renderSep() : renderRow(Row);
  return Out;
}
