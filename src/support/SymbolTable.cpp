//===- support/SymbolTable.cpp --------------------------------------------===//

#include "support/SymbolTable.h"

using namespace awam;

SymbolTable::SymbolTable() {
  // Keep in sync with the fixed-id enum in the header.
  static const char *const Fixed[NumFixedSymbols] = {
      "[]", ".", ",", ":-", "true", "fail", "!", "{}", "-", "+"};
  for (const char *Name : Fixed)
    intern(Name);
}

Symbol SymbolTable::intern(std::string_view Name) {
  auto It = Index.find(Name);
  if (It != Index.end())
    return It->second;
  Symbol S = static_cast<Symbol>(Names.size());
  // Key the index with the stable storage inside Names, not the caller's
  // buffer; the deque never moves stored strings.
  Names.push_back(std::string(Name));
  Index.emplace(std::string_view(Names.back()), S);
  return S;
}

Symbol SymbolTable::lookup(std::string_view Name) const {
  auto It = Index.find(Name);
  return It == Index.end() ? ~0u : It->second;
}
