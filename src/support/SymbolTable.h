//===- support/SymbolTable.h - Interned atom/functor names ------*- C++ -*-===//
//
// Part of the AWAM project: a reproduction of Tan & Lin, "Compiling Dataflow
// Analysis of Logic Programs", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interning table mapping atom and functor names to dense 32-bit ids.
///
/// Every atom, functor and variable name in the system is represented by a
/// Symbol, so term comparison and WAM operand encoding are integer
/// comparisons. A SymbolTable is owned by a Program/Machine context and
/// passed by reference; Symbols from different tables must not be mixed.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_SUPPORT_SYMBOLTABLE_H
#define AWAM_SUPPORT_SYMBOLTABLE_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace awam {

/// Dense id of an interned name. Symbol 0 is always the empty-list atom "[]"
/// and symbol 1 is always the list constructor "."; see SymbolTable.
using Symbol = uint32_t;

/// Interning table for atom and functor names.
///
/// The table pre-interns the handful of names the machine itself needs so
/// that they have fixed, documented ids (see the Sym* constants below).
class SymbolTable {
public:
  /// Fixed ids of pre-interned symbols.
  enum : Symbol {
    SymNil = 0,     ///< "[]" the empty list
    SymDot = 1,     ///< "." the list constructor
    SymComma = 2,   ///< ","
    SymNeck = 3,    ///< ":-"
    SymTrue = 4,    ///< "true"
    SymFail = 5,    ///< "fail"
    SymCut = 6,     ///< "!"
    SymCurly = 7,   ///< "{}"
    SymMinus = 8,   ///< "-"
    SymPlus = 9,    ///< "+"
    NumFixedSymbols = 10,
  };

  SymbolTable();

  /// Returns the id for \p Name, interning it on first use.
  Symbol intern(std::string_view Name);

  /// Returns the name of \p S. The returned view is stable for the lifetime
  /// of the table.
  std::string_view name(Symbol S) const {
    assert(S < Names.size() && "symbol out of range");
    return Names[S];
  }

  /// Returns the id of \p Name if it is already interned, or ~0u otherwise.
  Symbol lookup(std::string_view Name) const;

  /// Number of interned symbols.
  size_t size() const { return Names.size(); }

private:
  // A deque keeps each stored std::string object at a stable address, so the
  // string_view keys in Index (which point into these strings) never dangle.
  std::deque<std::string> Names;
  std::unordered_map<std::string_view, Symbol> Index;
};

} // namespace awam

#endif // AWAM_SUPPORT_SYMBOLTABLE_H
