//===- support/StringUtil.h - Small string helpers --------------*- C++ -*-===//
//
// Part of the AWAM project (PLDI 1992 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers shared by the disassembler, the report printer
/// and the benchmark table writers.
///
//===----------------------------------------------------------------------===//

#ifndef AWAM_SUPPORT_STRINGUTIL_H
#define AWAM_SUPPORT_STRINGUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace awam {

/// Left-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padLeft(std::string_view S, size_t Width);

/// Right-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padRight(std::string_view S, size_t Width);

/// Formats \p Value with \p Decimals digits after the point.
std::string formatDouble(double Value, int Decimals);

/// True if \p Name lexes as an unquoted Prolog atom (lower-case alpha start,
/// alphanumeric/underscore rest, or a symbolic-char atom, or one of the
/// solo atoms "[]", "{}", "!", ";").
bool isUnquotedAtom(std::string_view Name);

/// Quotes \p Name as a Prolog atom ('...' with escapes) when necessary.
std::string quoteAtom(std::string_view Name);

/// A fixed-layout text table used by the benchmark harness to print rows in
/// the same shape as the paper's tables.
class TextTable {
public:
  /// Creates a table; each column header also fixes a minimum width.
  explicit TextTable(std::vector<std::string> Headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table with column alignment.
  std::string str() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows; // empty row == separator
};

} // namespace awam

#endif // AWAM_SUPPORT_STRINGUTIL_H
