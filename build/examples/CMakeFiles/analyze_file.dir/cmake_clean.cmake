file(REMOVE_RECURSE
  "CMakeFiles/analyze_file.dir/analyze_file.cpp.o"
  "CMakeFiles/analyze_file.dir/analyze_file.cpp.o.d"
  "analyze_file"
  "analyze_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
