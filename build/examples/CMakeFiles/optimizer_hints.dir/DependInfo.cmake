
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/optimizer_hints.cpp" "examples/CMakeFiles/optimizer_hints.dir/optimizer_hints.cpp.o" "gcc" "examples/CMakeFiles/optimizer_hints.dir/optimizer_hints.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/awam_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/awam_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/absdom/CMakeFiles/awam_absdom.dir/DependInfo.cmake"
  "/root/repo/build/src/wam/CMakeFiles/awam_wam.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/awam_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/awam_term.dir/DependInfo.cmake"
  "/root/repo/build/src/programs/CMakeFiles/awam_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/awam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
