file(REMOVE_RECURSE
  "CMakeFiles/optimizer_hints.dir/optimizer_hints.cpp.o"
  "CMakeFiles/optimizer_hints.dir/optimizer_hints.cpp.o.d"
  "optimizer_hints"
  "optimizer_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
