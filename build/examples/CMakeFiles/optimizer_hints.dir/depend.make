# Empty dependencies file for optimizer_hints.
# This may be replaced when dependencies are built.
