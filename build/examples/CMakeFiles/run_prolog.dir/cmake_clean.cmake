file(REMOVE_RECURSE
  "CMakeFiles/run_prolog.dir/run_prolog.cpp.o"
  "CMakeFiles/run_prolog.dir/run_prolog.cpp.o.d"
  "run_prolog"
  "run_prolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_prolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
