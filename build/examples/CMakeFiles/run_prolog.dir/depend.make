# Empty dependencies file for run_prolog.
# This may be replaced when dependencies are built.
