file(REMOVE_RECURSE
  "CMakeFiles/fig2_fig3_wam_listing.dir/fig2_fig3_wam_listing.cpp.o"
  "CMakeFiles/fig2_fig3_wam_listing.dir/fig2_fig3_wam_listing.cpp.o.d"
  "fig2_fig3_wam_listing"
  "fig2_fig3_wam_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fig3_wam_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
