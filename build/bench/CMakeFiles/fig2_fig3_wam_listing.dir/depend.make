# Empty dependencies file for fig2_fig3_wam_listing.
# This may be replaced when dependencies are built.
