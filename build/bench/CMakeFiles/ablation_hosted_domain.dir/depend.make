# Empty dependencies file for ablation_hosted_domain.
# This may be replaced when dependencies are built.
