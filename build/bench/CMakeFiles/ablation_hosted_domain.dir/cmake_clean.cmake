file(REMOVE_RECURSE
  "CMakeFiles/ablation_hosted_domain.dir/ablation_hosted_domain.cpp.o"
  "CMakeFiles/ablation_hosted_domain.dir/ablation_hosted_domain.cpp.o.d"
  "ablation_hosted_domain"
  "ablation_hosted_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hosted_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
