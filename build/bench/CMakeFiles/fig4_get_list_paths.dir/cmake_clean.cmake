file(REMOVE_RECURSE
  "CMakeFiles/fig4_get_list_paths.dir/fig4_get_list_paths.cpp.o"
  "CMakeFiles/fig4_get_list_paths.dir/fig4_get_list_paths.cpp.o.d"
  "fig4_get_list_paths"
  "fig4_get_list_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_get_list_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
