# Empty compiler generated dependencies file for fig4_get_list_paths.
# This may be replaced when dependencies are built.
