# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_get_list_paths.
