file(REMOVE_RECURSE
  "CMakeFiles/ablation_et.dir/ablation_et.cpp.o"
  "CMakeFiles/ablation_et.dir/ablation_et.cpp.o.d"
  "ablation_et"
  "ablation_et.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_et.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
