# Empty dependencies file for ablation_et.
# This may be replaced when dependencies are built.
