# Empty compiler generated dependencies file for table2_platforms.
# This may be replaced when dependencies are built.
