file(REMOVE_RECURSE
  "CMakeFiles/table2_platforms.dir/table2_platforms.cpp.o"
  "CMakeFiles/table2_platforms.dir/table2_platforms.cpp.o.d"
  "table2_platforms"
  "table2_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
