file(REMOVE_RECURSE
  "libawam_term.a"
)
