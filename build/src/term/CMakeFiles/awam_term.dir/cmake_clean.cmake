file(REMOVE_RECURSE
  "CMakeFiles/awam_term.dir/Desugar.cpp.o"
  "CMakeFiles/awam_term.dir/Desugar.cpp.o.d"
  "CMakeFiles/awam_term.dir/Lexer.cpp.o"
  "CMakeFiles/awam_term.dir/Lexer.cpp.o.d"
  "CMakeFiles/awam_term.dir/Operators.cpp.o"
  "CMakeFiles/awam_term.dir/Operators.cpp.o.d"
  "CMakeFiles/awam_term.dir/Parser.cpp.o"
  "CMakeFiles/awam_term.dir/Parser.cpp.o.d"
  "CMakeFiles/awam_term.dir/Term.cpp.o"
  "CMakeFiles/awam_term.dir/Term.cpp.o.d"
  "CMakeFiles/awam_term.dir/TermWriter.cpp.o"
  "CMakeFiles/awam_term.dir/TermWriter.cpp.o.d"
  "libawam_term.a"
  "libawam_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
