# Empty compiler generated dependencies file for awam_term.
# This may be replaced when dependencies are built.
