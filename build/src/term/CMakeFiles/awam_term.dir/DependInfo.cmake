
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/term/Desugar.cpp" "src/term/CMakeFiles/awam_term.dir/Desugar.cpp.o" "gcc" "src/term/CMakeFiles/awam_term.dir/Desugar.cpp.o.d"
  "/root/repo/src/term/Lexer.cpp" "src/term/CMakeFiles/awam_term.dir/Lexer.cpp.o" "gcc" "src/term/CMakeFiles/awam_term.dir/Lexer.cpp.o.d"
  "/root/repo/src/term/Operators.cpp" "src/term/CMakeFiles/awam_term.dir/Operators.cpp.o" "gcc" "src/term/CMakeFiles/awam_term.dir/Operators.cpp.o.d"
  "/root/repo/src/term/Parser.cpp" "src/term/CMakeFiles/awam_term.dir/Parser.cpp.o" "gcc" "src/term/CMakeFiles/awam_term.dir/Parser.cpp.o.d"
  "/root/repo/src/term/Term.cpp" "src/term/CMakeFiles/awam_term.dir/Term.cpp.o" "gcc" "src/term/CMakeFiles/awam_term.dir/Term.cpp.o.d"
  "/root/repo/src/term/TermWriter.cpp" "src/term/CMakeFiles/awam_term.dir/TermWriter.cpp.o" "gcc" "src/term/CMakeFiles/awam_term.dir/TermWriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/awam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
