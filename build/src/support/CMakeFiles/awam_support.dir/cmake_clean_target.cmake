file(REMOVE_RECURSE
  "libawam_support.a"
)
