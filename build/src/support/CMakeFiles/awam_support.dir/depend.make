# Empty dependencies file for awam_support.
# This may be replaced when dependencies are built.
