file(REMOVE_RECURSE
  "CMakeFiles/awam_support.dir/StringUtil.cpp.o"
  "CMakeFiles/awam_support.dir/StringUtil.cpp.o.d"
  "CMakeFiles/awam_support.dir/SymbolTable.cpp.o"
  "CMakeFiles/awam_support.dir/SymbolTable.cpp.o.d"
  "libawam_support.a"
  "libawam_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
