file(REMOVE_RECURSE
  "CMakeFiles/awam_analyzer.dir/AbstractMachine.cpp.o"
  "CMakeFiles/awam_analyzer.dir/AbstractMachine.cpp.o.d"
  "CMakeFiles/awam_analyzer.dir/Analyzer.cpp.o"
  "CMakeFiles/awam_analyzer.dir/Analyzer.cpp.o.d"
  "CMakeFiles/awam_analyzer.dir/ExtensionTable.cpp.o"
  "CMakeFiles/awam_analyzer.dir/ExtensionTable.cpp.o.d"
  "CMakeFiles/awam_analyzer.dir/Pattern.cpp.o"
  "CMakeFiles/awam_analyzer.dir/Pattern.cpp.o.d"
  "libawam_analyzer.a"
  "libawam_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
