# Empty dependencies file for awam_analyzer.
# This may be replaced when dependencies are built.
