file(REMOVE_RECURSE
  "libawam_analyzer.a"
)
