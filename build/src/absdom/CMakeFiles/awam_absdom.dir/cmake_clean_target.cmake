file(REMOVE_RECURSE
  "libawam_absdom.a"
)
