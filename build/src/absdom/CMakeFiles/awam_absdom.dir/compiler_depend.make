# Empty compiler generated dependencies file for awam_absdom.
# This may be replaced when dependencies are built.
