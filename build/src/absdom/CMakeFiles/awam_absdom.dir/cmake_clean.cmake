file(REMOVE_RECURSE
  "CMakeFiles/awam_absdom.dir/AbsBuiltins.cpp.o"
  "CMakeFiles/awam_absdom.dir/AbsBuiltins.cpp.o.d"
  "CMakeFiles/awam_absdom.dir/AbsOps.cpp.o"
  "CMakeFiles/awam_absdom.dir/AbsOps.cpp.o.d"
  "libawam_absdom.a"
  "libawam_absdom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_absdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
