# Empty dependencies file for awam_programs.
# This may be replaced when dependencies are built.
