file(REMOVE_RECURSE
  "libawam_programs.a"
)
