file(REMOVE_RECURSE
  "CMakeFiles/awam_programs.dir/Benchmarks.cpp.o"
  "CMakeFiles/awam_programs.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/awam_programs.dir/Prelude.cpp.o"
  "CMakeFiles/awam_programs.dir/Prelude.cpp.o.d"
  "libawam_programs.a"
  "libawam_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
