file(REMOVE_RECURSE
  "CMakeFiles/awam_compiler.dir/Builtins.cpp.o"
  "CMakeFiles/awam_compiler.dir/Builtins.cpp.o.d"
  "CMakeFiles/awam_compiler.dir/ClauseCompiler.cpp.o"
  "CMakeFiles/awam_compiler.dir/ClauseCompiler.cpp.o.d"
  "CMakeFiles/awam_compiler.dir/CodeModule.cpp.o"
  "CMakeFiles/awam_compiler.dir/CodeModule.cpp.o.d"
  "CMakeFiles/awam_compiler.dir/Disasm.cpp.o"
  "CMakeFiles/awam_compiler.dir/Disasm.cpp.o.d"
  "CMakeFiles/awam_compiler.dir/Instruction.cpp.o"
  "CMakeFiles/awam_compiler.dir/Instruction.cpp.o.d"
  "CMakeFiles/awam_compiler.dir/ProgramCompiler.cpp.o"
  "CMakeFiles/awam_compiler.dir/ProgramCompiler.cpp.o.d"
  "libawam_compiler.a"
  "libawam_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
