# Empty dependencies file for awam_compiler.
# This may be replaced when dependencies are built.
