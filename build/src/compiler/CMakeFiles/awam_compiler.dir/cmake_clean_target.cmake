file(REMOVE_RECURSE
  "libawam_compiler.a"
)
