
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/Builtins.cpp" "src/compiler/CMakeFiles/awam_compiler.dir/Builtins.cpp.o" "gcc" "src/compiler/CMakeFiles/awam_compiler.dir/Builtins.cpp.o.d"
  "/root/repo/src/compiler/ClauseCompiler.cpp" "src/compiler/CMakeFiles/awam_compiler.dir/ClauseCompiler.cpp.o" "gcc" "src/compiler/CMakeFiles/awam_compiler.dir/ClauseCompiler.cpp.o.d"
  "/root/repo/src/compiler/CodeModule.cpp" "src/compiler/CMakeFiles/awam_compiler.dir/CodeModule.cpp.o" "gcc" "src/compiler/CMakeFiles/awam_compiler.dir/CodeModule.cpp.o.d"
  "/root/repo/src/compiler/Disasm.cpp" "src/compiler/CMakeFiles/awam_compiler.dir/Disasm.cpp.o" "gcc" "src/compiler/CMakeFiles/awam_compiler.dir/Disasm.cpp.o.d"
  "/root/repo/src/compiler/Instruction.cpp" "src/compiler/CMakeFiles/awam_compiler.dir/Instruction.cpp.o" "gcc" "src/compiler/CMakeFiles/awam_compiler.dir/Instruction.cpp.o.d"
  "/root/repo/src/compiler/ProgramCompiler.cpp" "src/compiler/CMakeFiles/awam_compiler.dir/ProgramCompiler.cpp.o" "gcc" "src/compiler/CMakeFiles/awam_compiler.dir/ProgramCompiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/term/CMakeFiles/awam_term.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/awam_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
