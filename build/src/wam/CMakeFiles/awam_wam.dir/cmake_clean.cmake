file(REMOVE_RECURSE
  "CMakeFiles/awam_wam.dir/Builtins.cpp.o"
  "CMakeFiles/awam_wam.dir/Builtins.cpp.o.d"
  "CMakeFiles/awam_wam.dir/Machine.cpp.o"
  "CMakeFiles/awam_wam.dir/Machine.cpp.o.d"
  "CMakeFiles/awam_wam.dir/Store.cpp.o"
  "CMakeFiles/awam_wam.dir/Store.cpp.o.d"
  "libawam_wam.a"
  "libawam_wam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_wam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
