file(REMOVE_RECURSE
  "libawam_wam.a"
)
