# Empty dependencies file for awam_wam.
# This may be replaced when dependencies are built.
