# Empty compiler generated dependencies file for awam_baseline.
# This may be replaced when dependencies are built.
