file(REMOVE_RECURSE
  "CMakeFiles/awam_baseline.dir/MetaAnalyzer.cpp.o"
  "CMakeFiles/awam_baseline.dir/MetaAnalyzer.cpp.o.d"
  "CMakeFiles/awam_baseline.dir/PrologHosted.cpp.o"
  "CMakeFiles/awam_baseline.dir/PrologHosted.cpp.o.d"
  "libawam_baseline.a"
  "libawam_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awam_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
