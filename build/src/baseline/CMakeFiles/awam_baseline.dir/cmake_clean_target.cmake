file(REMOVE_RECURSE
  "libawam_baseline.a"
)
