file(REMOVE_RECURSE
  "CMakeFiles/lattice_property_test.dir/LatticePropertyTest.cpp.o"
  "CMakeFiles/lattice_property_test.dir/LatticePropertyTest.cpp.o.d"
  "lattice_property_test"
  "lattice_property_test.pdb"
  "lattice_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
