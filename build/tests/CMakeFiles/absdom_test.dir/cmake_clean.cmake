file(REMOVE_RECURSE
  "CMakeFiles/absdom_test.dir/AbsDomTest.cpp.o"
  "CMakeFiles/absdom_test.dir/AbsDomTest.cpp.o.d"
  "absdom_test"
  "absdom_test.pdb"
  "absdom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absdom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
