# Empty dependencies file for absdom_test.
# This may be replaced when dependencies are built.
