# Empty compiler generated dependencies file for prelude_test.
# This may be replaced when dependencies are built.
