file(REMOVE_RECURSE
  "CMakeFiles/prelude_test.dir/PreludeTest.cpp.o"
  "CMakeFiles/prelude_test.dir/PreludeTest.cpp.o.d"
  "prelude_test"
  "prelude_test.pdb"
  "prelude_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prelude_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
