file(REMOVE_RECURSE
  "CMakeFiles/benchmark_golden_test.dir/BenchmarkGoldenTest.cpp.o"
  "CMakeFiles/benchmark_golden_test.dir/BenchmarkGoldenTest.cpp.o.d"
  "benchmark_golden_test"
  "benchmark_golden_test.pdb"
  "benchmark_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
