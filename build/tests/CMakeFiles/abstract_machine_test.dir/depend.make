# Empty dependencies file for abstract_machine_test.
# This may be replaced when dependencies are built.
