file(REMOVE_RECURSE
  "CMakeFiles/abstract_machine_test.dir/AbstractMachineTest.cpp.o"
  "CMakeFiles/abstract_machine_test.dir/AbstractMachineTest.cpp.o.d"
  "abstract_machine_test"
  "abstract_machine_test.pdb"
  "abstract_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
