file(REMOVE_RECURSE
  "CMakeFiles/store_support_test.dir/StoreSupportTest.cpp.o"
  "CMakeFiles/store_support_test.dir/StoreSupportTest.cpp.o.d"
  "store_support_test"
  "store_support_test.pdb"
  "store_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
