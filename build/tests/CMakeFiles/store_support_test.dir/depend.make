# Empty dependencies file for store_support_test.
# This may be replaced when dependencies are built.
