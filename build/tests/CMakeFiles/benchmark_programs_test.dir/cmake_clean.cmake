file(REMOVE_RECURSE
  "CMakeFiles/benchmark_programs_test.dir/BenchmarkProgramsTest.cpp.o"
  "CMakeFiles/benchmark_programs_test.dir/BenchmarkProgramsTest.cpp.o.d"
  "benchmark_programs_test"
  "benchmark_programs_test.pdb"
  "benchmark_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
