# Empty compiler generated dependencies file for benchmark_programs_test.
# This may be replaced when dependencies are built.
