# Empty dependencies file for absbuiltins_test.
# This may be replaced when dependencies are built.
