file(REMOVE_RECURSE
  "CMakeFiles/absbuiltins_test.dir/AbsBuiltinsTest.cpp.o"
  "CMakeFiles/absbuiltins_test.dir/AbsBuiltinsTest.cpp.o.d"
  "absbuiltins_test"
  "absbuiltins_test.pdb"
  "absbuiltins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absbuiltins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
