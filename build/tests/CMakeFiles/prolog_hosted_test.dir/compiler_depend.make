# Empty compiler generated dependencies file for prolog_hosted_test.
# This may be replaced when dependencies are built.
