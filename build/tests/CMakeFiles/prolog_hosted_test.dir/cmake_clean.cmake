file(REMOVE_RECURSE
  "CMakeFiles/prolog_hosted_test.dir/PrologHostedTest.cpp.o"
  "CMakeFiles/prolog_hosted_test.dir/PrologHostedTest.cpp.o.d"
  "prolog_hosted_test"
  "prolog_hosted_test.pdb"
  "prolog_hosted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prolog_hosted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
