file(REMOVE_RECURSE
  "CMakeFiles/crossvalidation_test.dir/CrossValidationTest.cpp.o"
  "CMakeFiles/crossvalidation_test.dir/CrossValidationTest.cpp.o.d"
  "crossvalidation_test"
  "crossvalidation_test.pdb"
  "crossvalidation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossvalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
