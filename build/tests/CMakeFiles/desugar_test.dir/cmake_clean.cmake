file(REMOVE_RECURSE
  "CMakeFiles/desugar_test.dir/DesugarTest.cpp.o"
  "CMakeFiles/desugar_test.dir/DesugarTest.cpp.o.d"
  "desugar_test"
  "desugar_test.pdb"
  "desugar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desugar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
