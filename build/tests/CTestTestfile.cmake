# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/absdom_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/crossvalidation_test[1]_include.cmake")
include("/root/repo/build/tests/benchmark_programs_test[1]_include.cmake")
include("/root/repo/build/tests/prolog_hosted_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/store_support_test[1]_include.cmake")
include("/root/repo/build/tests/absbuiltins_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/desugar_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_property_test[1]_include.cmake")
include("/root/repo/build/tests/machine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/prelude_test[1]_include.cmake")
include("/root/repo/build/tests/benchmark_golden_test[1]_include.cmake")
include("/root/repo/build/tests/abstract_machine_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_agreement_test[1]_include.cmake")
